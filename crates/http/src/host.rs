//! Host agents: the glue between sans-IO connections and the simulated
//! world.
//!
//! A [`ClientHost`] owns one or more (connection, app) pairs to a server;
//! a [`ServerHost`] accepts connections on demand and serves a catalog of
//! objects, optionally after a GAE-style variable wait (Fig 2's middle
//! bar). Both implement [`longlook_sim::Agent`].

use crate::app::ClientApp;
use crate::workload::{PageSpec, RESPONSE_HEADER};
use longlook_quic::{QuicConfig, QuicConnection};
use longlook_sim::rng::SimRng;
use longlook_sim::time::{Dur, Time};
use longlook_sim::world::{Agent, Ctx};
use longlook_sim::{FlowId, NodeId, Packet, PktClass};
use longlook_tcp::{TcpConfig, TcpConnection};
use longlook_transport::ccstate::StateTrace;
use longlook_transport::conn::{AppEvent, ConnError, ConnStats, Connection, StreamId};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};

/// Protocol selection plus configuration.
#[derive(Debug, Clone)]
pub enum ProtoConfig {
    /// QUIC with the given configuration.
    Quic(QuicConfig),
    /// TCP+TLS+HTTP/2 with the given configuration.
    Tcp(TcpConfig),
}

impl ProtoConfig {
    /// Packet-processing class at the receiving host.
    pub fn pkt_class(&self) -> PktClass {
        match self {
            ProtoConfig::Quic(_) => PktClass::Userspace,
            ProtoConfig::Tcp(_) => PktClass::Kernel,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ProtoConfig::Quic(_) => "QUIC",
            ProtoConfig::Tcp(_) => "TCP",
        }
    }

    /// Build a client-side connection.
    pub fn client_conn(&self, flow: FlowId, zero_rtt: bool, now: Time) -> Box<dyn Connection> {
        match self {
            ProtoConfig::Quic(cfg) => {
                Box::new(QuicConnection::client(cfg.clone(), flow.0, zero_rtt, now))
            }
            ProtoConfig::Tcp(cfg) => Box::new(TcpConnection::client(cfg.clone(), now)),
        }
    }

    /// Arm the connection watchdog (typed handshake/idle timeouts) on
    /// whichever protocol this is. The testbed applies this to both ends
    /// whenever a fault plan is attached, so faulted runs terminate with
    /// a typed error instead of livelocking.
    pub fn with_watchdog(mut self) -> Self {
        match &mut self {
            ProtoConfig::Quic(cfg) => cfg.watchdog = true,
            ProtoConfig::Tcp(cfg) => cfg.watchdog = true,
        }
        self
    }

    /// Build a server-side connection.
    pub fn server_conn(&self, flow: FlowId, now: Time) -> Box<dyn Connection> {
        match self {
            ProtoConfig::Quic(cfg) => Box::new(QuicConnection::server(cfg.clone(), flow.0, now)),
            ProtoConfig::Tcp(cfg) => Box::new(TcpConnection::server(cfg.clone(), now)),
        }
    }
}

/// Pump a connection's transmissions into the world and re-arm its timer.
fn pump(conn: &mut dyn Connection, ctx: &mut Ctx<'_>, peer: NodeId, flow: FlowId, class: PktClass) {
    let now = ctx.now;
    while let Some(tx) = conn.poll_transmit(now) {
        ctx.send(Packet::new(
            ctx.node(),
            peer,
            flow,
            class,
            tx.wire_size,
            tx.payload,
        ));
    }
    if let Some(w) = conn.next_wakeup() {
        ctx.wake_at(w);
    }
}

struct ClientSlot {
    flow: FlowId,
    conn: Box<dyn Connection>,
    app: Box<dyn ClientApp>,
    class: PktClass,
    started: bool,
}

/// A client host running one or more apps, each over its own connection
/// to `server`.
pub struct ClientHost {
    server: NodeId,
    slots: Vec<ClientSlot>,
    /// Stop the world when every app reports done.
    stop_when_done: bool,
    stopped: bool,
}

impl ClientHost {
    /// New empty client host targeting `server`.
    pub fn new(server: NodeId, stop_when_done: bool) -> Self {
        ClientHost {
            server,
            slots: Vec::new(),
            stop_when_done,
            stopped: false,
        }
    }

    /// Add a (connection, app) pair; returns its flow id.
    pub fn add(
        &mut self,
        flow: FlowId,
        proto: &ProtoConfig,
        zero_rtt: bool,
        app: Box<dyn ClientApp>,
        now: Time,
    ) -> FlowId {
        let conn = proto.client_conn(flow, zero_rtt, now);
        self.slots.push(ClientSlot {
            flow,
            conn,
            app,
            class: proto.pkt_class(),
            started: false,
        });
        flow
    }

    /// Borrow an app downcast to its concrete type (result extraction).
    pub fn app<T: 'static>(&self, index: usize) -> &T {
        self.slots[index]
            .app
            .as_any()
            .downcast_ref::<T>()
            .expect("app type mismatch")
    }

    /// Stats of the `index`-th connection.
    pub fn conn_stats(&self, index: usize) -> ConnStats {
        self.slots[index].conn.stats()
    }

    /// Congestion window timeline of the `index`-th connection.
    pub fn cwnd_timeline(&self, index: usize) -> &[(Time, u64)] {
        self.slots[index].conn.cwnd_timeline()
    }

    /// State trace of the `index`-th connection.
    pub fn state_trace(&self, index: usize, now: Time) -> StateTrace {
        self.slots[index].conn.state_trace(now)
    }

    /// Terminal error of the `index`-th connection, if it gave up.
    pub fn conn_error(&self, index: usize) -> Option<ConnError> {
        self.slots[index].conn.error()
    }

    /// Structured trace records of the `index`-th connection
    /// (`LONGLOOK_TRACE`); empty when tracing is off.
    pub fn conn_trace(&self, index: usize) -> &[longlook_sim::trace::TraceRecord] {
        self.slots[index].conn.trace_records()
    }

    /// Number of apps.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the host has no apps.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// All apps done?
    pub fn all_done(&self) -> bool {
        self.slots.iter().all(|s| s.app.done())
    }

    fn service(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        for slot in &mut self.slots {
            if !slot.started {
                slot.started = true;
                slot.app.on_start(slot.conn.as_mut(), now);
            }
            slot.app.on_tick(slot.conn.as_mut(), now);
            // Event/app loop: apps may trigger sends that produce events.
            loop {
                let mut progressed = false;
                while let Some(ev) = slot.conn.poll_event() {
                    slot.app.on_event(ev, slot.conn.as_mut(), now);
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
            pump(slot.conn.as_mut(), ctx, self.server, slot.flow, slot.class);
            if let Some(w) = slot.app.next_wakeup() {
                ctx.wake_at(w);
            }
        }
        if self.stop_when_done && !self.stopped && !self.slots.is_empty() && self.all_done() {
            self.stopped = true;
            ctx.request_stop();
        }
    }
}

impl Agent for ClientHost {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        if let Some(slot) = self.slots.iter_mut().find(|s| s.flow == pkt.flow) {
            slot.conn.on_datagram(pkt.payload, now);
        }
        self.service(ctx);
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        for slot in &mut self.slots {
            slot.conn.on_wakeup(now);
        }
        self.service(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// GAE-style variable request wait (Fig 2): uniform in `[min, max]`.
#[derive(Debug, Clone)]
pub struct WaitModel {
    /// Minimum wait.
    pub min: Dur,
    /// Maximum wait.
    pub max: Dur,
}

/// Per-request serialized application processing cost. The paper's QUIC
/// server is the single-threaded standalone test server from the Chromium
/// tree, while its TCP baseline is multi-process Apache — so bursts of
/// requests (100-200 objects) serialize behind one core on the QUIC side.
/// This is part of why large numbers of small objects are QUIC's worst
/// case (Sec 5.2).
fn default_request_cost(class: PktClass) -> Dur {
    match class {
        // The standalone quic_server from the Chromium tree — the code
        // Google itself labels "not performant, for integration testing".
        PktClass::Userspace => Dur::from_micros(4_000),
        // Apache 2.4 with worker processes.
        PktClass::Kernel => Dur::from_micros(250),
    }
}

struct ServerSlot {
    conn: Box<dyn Connection>,
    peer: NodeId,
    class: PktClass,
    /// Request bytes accumulated per stream.
    request_bytes: BTreeMap<StreamId, u64>,
}

/// A server host: accepts connections, serves the catalog.
pub struct ServerHost {
    proto: ProtoConfig,
    /// Per-flow protocol overrides (mixed-protocol experiments, e.g. the
    /// fairness tests where QUIC and TCP flows share one bottleneck).
    flow_protos: HashMap<FlowId, ProtoConfig>,
    catalog: PageSpec,
    conns: HashMap<FlowId, ServerSlot>,
    wait: Option<WaitModel>,
    /// Serialized request-handling cost override (None = per-protocol
    /// default, see [`default_request_cost`]).
    request_cost: Option<Dur>,
    /// When the single application worker frees up.
    app_cpu_free: Time,
    rng: SimRng,
    /// Deferred responses: (due, flow, stream, object).
    pending: Vec<(Time, FlowId, StreamId, usize)>,
    /// Reused per-service scratch (hot path: `service` runs on every
    /// delivered packet; these keep it allocation-free in steady state).
    scratch_due: Vec<(Time, FlowId, StreamId, usize)>,
    scratch_flows: Vec<FlowId>,
    scratch_completed: Vec<(StreamId, u64)>,
}

impl ServerHost {
    /// New server with the given protocol and object catalog.
    pub fn new(proto: ProtoConfig, catalog: PageSpec, seed: u64) -> Self {
        ServerHost {
            proto,
            flow_protos: HashMap::new(),
            catalog,
            conns: HashMap::new(),
            wait: None,
            request_cost: None,
            app_cpu_free: Time::ZERO,
            rng: SimRng::new(seed),
            pending: Vec::new(),
            scratch_due: Vec::new(),
            scratch_flows: Vec::new(),
            scratch_completed: Vec::new(),
        }
    }

    /// Override the per-request application processing cost.
    pub fn with_request_cost(mut self, cost: Dur) -> Self {
        self.request_cost = Some(cost);
        self
    }

    /// Add a GAE-style variable wait before each response.
    pub fn with_wait(mut self, wait: WaitModel) -> Self {
        self.wait = Some(wait);
        self
    }

    /// Serve `flow` with a specific protocol (mixed-protocol worlds).
    pub fn expect_flow(&mut self, flow: FlowId, proto: ProtoConfig) {
        self.flow_protos.insert(flow, proto);
    }

    /// State trace of the connection for `flow`, if any.
    pub fn state_trace(&self, flow: FlowId, now: Time) -> Option<StateTrace> {
        self.conns.get(&flow).map(|s| s.conn.state_trace(now))
    }

    /// Stats of the connection for `flow`.
    pub fn conn_stats(&self, flow: FlowId) -> Option<ConnStats> {
        self.conns.get(&flow).map(|s| s.conn.stats())
    }

    /// Congestion window timeline for `flow`.
    pub fn cwnd_timeline(&self, flow: FlowId) -> Option<&[(Time, u64)]> {
        self.conns.get(&flow).map(|s| s.conn.cwnd_timeline())
    }

    /// Terminal error of the connection for `flow`, if it gave up.
    pub fn conn_error(&self, flow: FlowId) -> Option<ConnError> {
        self.conns.get(&flow).and_then(|s| s.conn.error())
    }

    /// Structured trace records of the connection for `flow`
    /// (`LONGLOOK_TRACE`); empty when tracing is off.
    pub fn conn_trace(&self, flow: FlowId) -> Option<&[longlook_sim::trace::TraceRecord]> {
        self.conns.get(&flow).map(|s| s.conn.trace_records())
    }

    fn respond(&mut self, flow: FlowId, stream: StreamId, object: usize, now: Time) {
        let size = self
            .catalog
            .objects
            .get(object)
            .copied()
            .unwrap_or(10 * 1024);
        if let Some(slot) = self.conns.get_mut(&flow) {
            slot.conn
                .stream_send(now, stream, RESPONSE_HEADER + size, true);
        }
    }

    fn service(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        // Fire deferred responses. Split ready/later into a reused scratch
        // buffer — same ordering as the old drain+partition, no per-event
        // allocation.
        if !self.pending.is_empty() {
            let mut due = std::mem::take(&mut self.scratch_due);
            debug_assert!(due.is_empty());
            self.pending.retain(|&e| {
                if e.0 <= now {
                    due.push(e);
                    false
                } else {
                    true
                }
            });
            for &(_, flow, stream, object) in &due {
                self.respond(flow, stream, object, now);
            }
            due.clear();
            self.scratch_due = due;
        }
        // Drain events on every connection (keys snapshotted into a reused
        // buffer so responses can mutate the map mid-walk).
        let mut flows = std::mem::take(&mut self.scratch_flows);
        flows.clear();
        flows.extend(self.conns.keys().copied());
        for &flow in &flows {
            let mut completed = std::mem::take(&mut self.scratch_completed);
            debug_assert!(completed.is_empty());
            {
                let slot = self.conns.get_mut(&flow).expect("iterating keys");
                while let Some(ev) = slot.conn.poll_event() {
                    match ev {
                        AppEvent::StreamOpened(id) => {
                            slot.request_bytes.insert(id, 0);
                        }
                        AppEvent::StreamData { id, bytes } => {
                            *slot.request_bytes.entry(id).or_insert(0) += bytes;
                        }
                        AppEvent::StreamFin(id) => {
                            let len = slot.request_bytes.remove(&id).unwrap_or(0);
                            completed.push((id, len));
                        }
                        AppEvent::HandshakeDone => {}
                    }
                }
            }
            for &(stream, request_len) in &completed {
                let Some(object) = PageSpec::decode_request(request_len) else {
                    continue;
                };
                // Serialized application worker: each request costs CPU.
                let class = self
                    .flow_protos
                    .get(&flow)
                    .unwrap_or(&self.proto)
                    .pkt_class();
                let cost = self.request_cost.unwrap_or(default_request_cost(class));
                let start = if self.app_cpu_free > now {
                    self.app_cpu_free
                } else {
                    now
                };
                let mut due = start + cost;
                self.app_cpu_free = due;
                if let Some(w) = &self.wait {
                    let span = w.max.saturating_sub(w.min).as_nanos();
                    let extra = Dur::from_nanos(self.rng.uniform_u64(0, span.max(1)));
                    due += w.min + extra;
                }
                if due <= now {
                    self.respond(flow, stream, object, now);
                } else {
                    self.pending.push((due, flow, stream, object));
                    ctx.wake_at(due);
                }
            }
            completed.clear();
            self.scratch_completed = completed;
        }
        self.scratch_flows = flows;
        // Pump transmissions.
        for (flow, slot) in self.conns.iter_mut() {
            pump(slot.conn.as_mut(), ctx, slot.peer, *flow, slot.class);
        }
    }
}

impl Agent for ServerHost {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        let proto = self.flow_protos.get(&pkt.flow).unwrap_or(&self.proto);
        let slot = self.conns.entry(pkt.flow).or_insert_with(|| ServerSlot {
            conn: proto.server_conn(pkt.flow, now),
            peer: pkt.src,
            class: proto.pkt_class(),
            request_bytes: BTreeMap::new(),
        });
        slot.conn.on_datagram(pkt.payload, now);
        self.service(ctx);
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        for slot in self.conns.values_mut() {
            slot.conn.on_wakeup(now);
        }
        self.service(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
