//! Client-side applications driven by connection events.

use crate::workload::PageSpec;
use longlook_sim::time::{Dur, Time};
use longlook_transport::conn::{AppEvent, Connection, StreamId};
use std::any::Any;
use std::collections::BTreeMap;

/// A client application running over one connection.
pub trait ClientApp: Any {
    /// Called once when the host starts.
    fn on_start(&mut self, conn: &mut dyn Connection, now: Time);

    /// A connection event for this app.
    fn on_event(&mut self, ev: AppEvent, conn: &mut dyn Connection, now: Time);

    /// Whether the workload finished.
    fn done(&self) -> bool;

    /// Time-driven apps (e.g. a video player whose buffer drains in real
    /// time) may request a wakeup; the host arranges it and calls
    /// [`ClientApp::on_tick`].
    fn next_wakeup(&self) -> Option<Time> {
        None
    }

    /// Called on host wakeups for time-driven apps.
    fn on_tick(&mut self, _conn: &mut dyn Connection, _now: Time) {}

    /// Downcast support for result extraction.
    fn as_any(&self) -> &dyn Any;
}

/// Per-object resource timing, HAR-style (Sec 3.3: "we use Chrome's remote
/// debugging protocol to load a page and then extract HARs").
#[derive(Debug, Clone, Copy)]
pub struct ResourceTiming {
    /// Object index in the page.
    pub object: usize,
    /// Request issue time.
    pub started: Time,
    /// First response byte.
    pub first_byte: Option<Time>,
    /// Response complete.
    pub finished: Option<Time>,
    /// Payload bytes received (includes the response header).
    pub bytes: u64,
}

/// Fetches every object of a [`PageSpec`], measuring page load time.
pub struct WebClient {
    page: PageSpec,
    started_at: Option<Time>,
    finished_at: Option<Time>,
    /// Object indices not yet requested (MSPC may defer them).
    next_object: usize,
    /// stream -> object index.
    inflight: BTreeMap<StreamId, usize>,
    timings: Vec<ResourceTiming>,
    completed: usize,
    established: bool,
}

impl WebClient {
    /// New fetcher for `page`.
    pub fn new(page: PageSpec) -> Self {
        let timings = (0..page.len())
            .map(|i| ResourceTiming {
                object: i,
                started: Time::ZERO,
                first_byte: None,
                finished: None,
                bytes: 0,
            })
            .collect();
        WebClient {
            page,
            started_at: None,
            finished_at: None,
            next_object: 0,
            inflight: BTreeMap::new(),
            timings,
            completed: 0,
            established: false,
        }
    }

    fn issue_requests(&mut self, conn: &mut dyn Connection, now: Time) {
        while self.next_object < self.page.len() {
            let Some(id) = conn.open_stream(now) else {
                break; // MSPC limit: wait for streams to finish
            };
            let i = self.next_object;
            self.next_object += 1;
            self.inflight.insert(id, i);
            self.timings[i].started = now;
            conn.stream_send(now, id, PageSpec::request_len(i), true);
        }
    }

    /// Page load time, once finished.
    pub fn plt(&self) -> Option<Dur> {
        match (self.started_at, self.finished_at) {
            (Some(s), Some(f)) => Some(f.saturating_since(s)),
            _ => None,
        }
    }

    /// HAR-style per-object timings.
    pub fn har(&self) -> &[ResourceTiming] {
        &self.timings
    }

    /// When the load began.
    pub fn started_at(&self) -> Option<Time> {
        self.started_at
    }
}

impl ClientApp for WebClient {
    fn on_start(&mut self, conn: &mut dyn Connection, now: Time) {
        self.started_at = Some(now);
        if conn.is_established() {
            self.established = true;
            self.issue_requests(conn, now);
        }
        // Otherwise wait for HandshakeDone; the connection initiates the
        // handshake on its own.
    }

    fn on_event(&mut self, ev: AppEvent, conn: &mut dyn Connection, now: Time) {
        match ev {
            AppEvent::HandshakeDone => {
                if !self.established {
                    self.established = true;
                    self.issue_requests(conn, now);
                }
            }
            AppEvent::StreamData { id, bytes } => {
                if let Some(&obj) = self.inflight.get(&id) {
                    let t = &mut self.timings[obj];
                    if t.first_byte.is_none() {
                        t.first_byte = Some(now);
                    }
                    t.bytes += bytes;
                }
            }
            AppEvent::StreamFin(id) => {
                if let Some(obj) = self.inflight.remove(&id) {
                    self.timings[obj].finished = Some(now);
                    self.completed += 1;
                    if self.completed == self.page.len() {
                        self.finished_at = Some(now);
                    } else {
                        // A stream slot may have opened up (MSPC).
                        self.issue_requests(conn, now);
                    }
                }
            }
            AppEvent::StreamOpened(_) => {} // server push not modeled
        }
    }

    fn done(&self) -> bool {
        self.finished_at.is_some()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Downloads one large object forever (or until a byte target), sampling
/// throughput in fixed buckets — the instrument for the fairness (Fig 4,
/// Table 4) and variable-bandwidth (Fig 11) experiments.
pub struct BulkClient {
    /// Object index requested (catalog entry on the server).
    object: usize,
    bucket: Dur,
    /// Defer the first request by this much (staggered flow starts).
    start_delay: Dur,
    requested: bool,
    started_at: Option<Time>,
    /// Received payload bytes per bucket.
    buckets: Vec<u64>,
    total: u64,
    finished_at: Option<Time>,
    established: bool,
}

impl BulkClient {
    /// Download catalog object `object`, sampling in `bucket`-sized bins.
    pub fn new(object: usize, bucket: Dur) -> Self {
        Self::with_delay(object, bucket, Dur::ZERO)
    }

    /// Like [`BulkClient::new`] but the first request waits `start_delay`
    /// (staggered starts keep concurrent flows' handshakes from colliding
    /// in a tiny bottleneck buffer).
    pub fn with_delay(object: usize, bucket: Dur, start_delay: Dur) -> Self {
        BulkClient {
            object,
            bucket,
            start_delay,
            requested: false,
            started_at: None,
            buckets: Vec::new(),
            total: 0,
            finished_at: None,
            established: false,
        }
    }

    fn request(&mut self, conn: &mut dyn Connection, now: Time) {
        if self.requested {
            return;
        }
        if now < self.started_at.unwrap_or(Time::ZERO) + self.start_delay {
            return; // on_tick retries at the wakeup
        }
        if let Some(id) = conn.open_stream(now) {
            self.requested = true;
            conn.stream_send(now, id, PageSpec::request_len(self.object), true);
        }
    }

    /// Total payload bytes received.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Completion time, if the transfer finished.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }

    /// Throughput timeline in Mbps per bucket.
    pub fn throughput_mbps(&self) -> Vec<f64> {
        let secs = self.bucket.as_secs_f64();
        self.buckets
            .iter()
            .map(|&b| b as f64 * 8.0 / 1e6 / secs)
            .collect()
    }

    /// Mean throughput over the active period, Mbps.
    pub fn mean_throughput_mbps(&self) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        let tl = self.throughput_mbps();
        tl.iter().sum::<f64>() / tl.len() as f64
    }
}

impl ClientApp for BulkClient {
    fn on_start(&mut self, conn: &mut dyn Connection, now: Time) {
        self.started_at = Some(now);
        if conn.is_established() {
            self.established = true;
            self.request(conn, now);
        }
    }

    fn next_wakeup(&self) -> Option<Time> {
        // Only the post-handshake delayed start needs a timer; before the
        // handshake completes, HandshakeDone triggers the request path
        // (arming a past-time wake pre-handshake would spin the world).
        if self.requested || self.finished_at.is_some() || !self.established {
            return None;
        }
        self.started_at.map(|t| t + self.start_delay)
    }

    fn on_tick(&mut self, conn: &mut dyn Connection, now: Time) {
        if self.established {
            self.request(conn, now);
        }
    }

    fn on_event(&mut self, ev: AppEvent, conn: &mut dyn Connection, now: Time) {
        match ev {
            AppEvent::HandshakeDone => {
                if !self.established {
                    self.established = true;
                    self.request(conn, now);
                }
            }
            AppEvent::StreamData { bytes, .. } => {
                self.total += bytes;
                let start = self.started_at.unwrap_or(Time::ZERO);
                let idx = (now.saturating_since(start).as_nanos() / self.bucket.as_nanos().max(1))
                    as usize;
                if self.buckets.len() <= idx {
                    self.buckets.resize(idx + 1, 0);
                }
                self.buckets[idx] += bytes;
            }
            AppEvent::StreamFin(_) => {
                self.finished_at = Some(now);
            }
            AppEvent::StreamOpened(_) => {}
        }
    }

    fn done(&self) -> bool {
        self.finished_at.is_some()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{REQUEST_BASE, RESPONSE_HEADER};
    use longlook_transport::ccstate::StateTrace;
    use longlook_transport::conn::{ConnStats, Transmit};

    /// Minimal fake connection capturing app calls.
    struct FakeConn {
        established: bool,
        streams_opened: u64,
        max_streams: u64,
        sends: Vec<(StreamId, u64, bool)>,
    }

    impl FakeConn {
        fn new(established: bool, max_streams: u64) -> Self {
            FakeConn {
                established,
                streams_opened: 0,
                max_streams,
                sends: Vec::new(),
            }
        }
    }

    impl Connection for FakeConn {
        fn on_datagram(&mut self, _p: longlook_sim::packet::Payload, _now: Time) {}
        fn poll_transmit(&mut self, _now: Time) -> Option<Transmit> {
            None
        }
        fn next_wakeup(&self) -> Option<Time> {
            None
        }
        fn on_wakeup(&mut self, _now: Time) {}
        fn open_stream(&mut self, _now: Time) -> Option<StreamId> {
            if self.streams_opened >= self.max_streams {
                return None;
            }
            self.streams_opened += 1;
            Some(StreamId(self.streams_opened * 2 + 1))
        }
        fn stream_send(&mut self, _now: Time, id: StreamId, bytes: u64, fin: bool) {
            self.sends.push((id, bytes, fin));
        }
        fn poll_event(&mut self) -> Option<AppEvent> {
            None
        }
        fn is_established(&self) -> bool {
            self.established
        }
        fn is_quiescent(&self) -> bool {
            true
        }
        fn stats(&self) -> ConnStats {
            ConnStats::default()
        }
        fn cwnd_timeline(&self) -> &[(Time, u64)] {
            &[]
        }
        fn state_trace(&self, _now: Time) -> StateTrace {
            StateTrace::default()
        }
        fn srtt(&self) -> Dur {
            Dur::from_millis(36)
        }
    }

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn webclient_requests_all_objects_when_established() {
        let mut app = WebClient::new(PageSpec::uniform(3, 1000));
        let mut conn = FakeConn::new(true, 100);
        app.on_start(&mut conn, t(0));
        assert_eq!(conn.sends.len(), 3);
        assert_eq!(conn.sends[0].1, REQUEST_BASE);
        assert_eq!(conn.sends[1].1, REQUEST_BASE + 1);
        assert!(conn.sends.iter().all(|&(_, _, fin)| fin));
    }

    #[test]
    fn webclient_waits_for_handshake() {
        let mut app = WebClient::new(PageSpec::uniform(2, 1000));
        let mut conn = FakeConn::new(false, 100);
        app.on_start(&mut conn, t(0));
        assert!(conn.sends.is_empty());
        conn.established = true;
        app.on_event(AppEvent::HandshakeDone, &mut conn, t(36));
        assert_eq!(conn.sends.len(), 2);
    }

    #[test]
    fn webclient_mspc_defers_requests() {
        let mut app = WebClient::new(PageSpec::uniform(5, 1000));
        let mut conn = FakeConn::new(true, 2);
        app.on_start(&mut conn, t(0));
        assert_eq!(conn.sends.len(), 2, "only 2 slots");
        // Finish one stream: a new request goes out.
        let first = conn.sends[0].0;
        conn.max_streams += 1;
        app.on_event(AppEvent::StreamFin(first), &mut conn, t(50));
        assert_eq!(conn.sends.len(), 3);
    }

    #[test]
    fn webclient_plt_and_har() {
        let mut app = WebClient::new(PageSpec::uniform(2, 1000));
        let mut conn = FakeConn::new(true, 100);
        app.on_start(&mut conn, t(0));
        let (s1, s2) = (conn.sends[0].0, conn.sends[1].0);
        app.on_event(
            AppEvent::StreamData {
                id: s1,
                bytes: 1000 + RESPONSE_HEADER,
            },
            &mut conn,
            t(40),
        );
        app.on_event(AppEvent::StreamFin(s1), &mut conn, t(41));
        assert!(!app.done());
        app.on_event(
            AppEvent::StreamData {
                id: s2,
                bytes: 1000 + RESPONSE_HEADER,
            },
            &mut conn,
            t(70),
        );
        app.on_event(AppEvent::StreamFin(s2), &mut conn, t(75));
        assert!(app.done());
        assert_eq!(app.plt(), Some(Dur::from_millis(75)));
        let har = app.har();
        assert_eq!(har[0].first_byte, Some(t(40)));
        assert_eq!(har[1].finished, Some(t(75)));
        assert_eq!(har[0].bytes, 1100);
    }

    #[test]
    fn bulk_client_throughput_buckets() {
        let mut app = BulkClient::new(0, Dur::from_millis(100));
        let mut conn = FakeConn::new(true, 100);
        app.on_start(&mut conn, t(0));
        assert_eq!(conn.sends.len(), 1);
        let id = conn.sends[0].0;
        // 1 MB in bucket 0, 2 MB in bucket 3.
        app.on_event(
            AppEvent::StreamData {
                id,
                bytes: 1_000_000,
            },
            &mut conn,
            t(50),
        );
        app.on_event(
            AppEvent::StreamData {
                id,
                bytes: 2_000_000,
            },
            &mut conn,
            t(350),
        );
        let tl = app.throughput_mbps();
        assert_eq!(tl.len(), 4);
        assert!((tl[0] - 80.0).abs() < 1e-9, "1MB per 100ms = 80 Mbps");
        assert_eq!(tl[1], 0.0);
        assert!((tl[3] - 160.0).abs() < 1e-9);
        assert_eq!(app.total_bytes(), 3_000_000);
        assert!(!app.done());
        app.on_event(AppEvent::StreamFin(id), &mut conn, t(400));
        assert!(app.done());
    }
}
