//! Split-connection transparent proxies (paper Sec 5.5, Figs 16-18).
//!
//! High-latency networks commonly deploy transparent TCP proxies that
//! terminate connections mid-path, halving the control-loop RTT and
//! recovering losses locally. QUIC's encrypted transport headers make
//! that impossible — so the paper measures what performance QUIC "leaves
//! on the table" by writing an explicit QUIC proxy and comparing.
//!
//! [`ProxyHost`] terminates the client-side connection and opens its own
//! connection to the origin, forwarding stream data in both directions
//! with store-and-forward buffering. Per the paper, the QUIC proxy cannot
//! use 0-RTT on either leg ("inability to establish connections via
//! 0-RTT"), which is why it *hurts* small objects while helping large
//! transfers under loss.

use longlook_http::host::ProtoConfig;
use longlook_sim::world::{Agent, Ctx};
use longlook_sim::{FlowId, NodeId, Packet, PktClass};
use longlook_transport::conn::{AppEvent, Connection, StreamId};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};

/// One proxied session: a client-side (downstream) connection and an
/// origin-side (upstream) connection, with stream mappings.
struct Session {
    down: Box<dyn Connection>,
    up: Box<dyn Connection>,
    client: NodeId,
    down_flow: FlowId,
    up_flow: FlowId,
    /// downstream stream -> upstream stream.
    map_up: BTreeMap<StreamId, StreamId>,
    /// upstream stream -> downstream stream.
    map_down: BTreeMap<StreamId, StreamId>,
    /// Requests arriving before the upstream leg is established.
    pending_up: Vec<(StreamId, u64, bool)>,
    up_established: bool,
}

/// A transparent split-connection proxy between clients and one origin.
pub struct ProxyHost {
    origin: NodeId,
    /// Protocol used on the client-facing leg.
    down_proto: ProtoConfig,
    /// Protocol used on the origin-facing leg.
    up_proto: ProtoConfig,
    sessions: HashMap<FlowId, Session>,
    /// Upstream flow -> session key (downstream flow).
    up_index: HashMap<FlowId, FlowId>,
    next_up_flow: u64,
}

impl ProxyHost {
    /// New proxy forwarding to `origin`. The upstream flow-id space is
    /// `base_flow + k` — keep it disjoint from client flow ids.
    pub fn new(
        origin: NodeId,
        down_proto: ProtoConfig,
        up_proto: ProtoConfig,
        base_flow: u64,
    ) -> Self {
        ProxyHost {
            origin,
            down_proto,
            up_proto,
            sessions: HashMap::new(),
            up_index: HashMap::new(),
            next_up_flow: base_flow,
        }
    }

    fn pump_conn(
        conn: &mut dyn Connection,
        ctx: &mut Ctx<'_>,
        peer: NodeId,
        flow: FlowId,
        class: PktClass,
    ) {
        let now = ctx.now;
        while let Some(tx) = conn.poll_transmit(now) {
            ctx.send(Packet::new(
                ctx.node(),
                peer,
                flow,
                class,
                tx.wire_size,
                tx.payload,
            ));
        }
        if let Some(w) = conn.next_wakeup() {
            ctx.wake_at(w);
        }
    }

    fn service(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        let keys: Vec<FlowId> = self.sessions.keys().copied().collect();
        for key in keys {
            let sess = self.sessions.get_mut(&key).expect("iterating keys");
            // Downstream -> upstream forwarding.
            while let Some(ev) = sess.down.poll_event() {
                match ev {
                    AppEvent::StreamOpened(_) | AppEvent::HandshakeDone => {}
                    AppEvent::StreamData { id, bytes } => {
                        if sess.up_established {
                            let up = sess.up.as_mut();
                            let up_id = *sess
                                .map_up
                                .entry(id)
                                .or_insert_with(|| up.open_stream(now).expect("upstream"));
                            sess.map_down.insert(up_id, id);
                            sess.up.stream_send(now, up_id, bytes, false);
                        } else {
                            sess.pending_up.push((id, bytes, false));
                        }
                    }
                    AppEvent::StreamFin(id) => {
                        if sess.up_established {
                            let up = sess.up.as_mut();
                            let up_id = *sess
                                .map_up
                                .entry(id)
                                .or_insert_with(|| up.open_stream(now).expect("upstream"));
                            sess.map_down.insert(up_id, id);
                            sess.up.stream_send(now, up_id, 0, true);
                        } else {
                            sess.pending_up.push((id, 0, true));
                        }
                    }
                }
            }
            // Upstream -> downstream forwarding.
            while let Some(ev) = sess.up.poll_event() {
                match ev {
                    AppEvent::HandshakeDone => {
                        sess.up_established = true;
                        for (id, bytes, fin) in std::mem::take(&mut sess.pending_up) {
                            let up = sess.up.as_mut();
                            let up_id = *sess
                                .map_up
                                .entry(id)
                                .or_insert_with(|| up.open_stream(now).expect("upstream"));
                            sess.map_down.insert(up_id, id);
                            sess.up.stream_send(now, up_id, bytes, fin);
                        }
                    }
                    AppEvent::StreamOpened(_) => {}
                    AppEvent::StreamData { id, bytes } => {
                        if let Some(&down_id) = sess.map_down.get(&id) {
                            sess.down.stream_send(now, down_id, bytes, false);
                        }
                    }
                    AppEvent::StreamFin(id) => {
                        if let Some(&down_id) = sess.map_down.get(&id) {
                            sess.down.stream_send(now, down_id, 0, true);
                        }
                    }
                }
            }
            Self::pump_conn(
                sess.down.as_mut(),
                ctx,
                sess.client,
                sess.down_flow,
                self.down_proto.pkt_class(),
            );
            Self::pump_conn(
                sess.up.as_mut(),
                ctx,
                self.origin,
                sess.up_flow,
                self.up_proto.pkt_class(),
            );
        }
    }
}

impl Agent for ProxyHost {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        if let Some(&down_flow) = self.up_index.get(&pkt.flow) {
            // From the origin.
            if let Some(sess) = self.sessions.get_mut(&down_flow) {
                sess.up.on_datagram(pkt.payload, now);
            }
        } else {
            // From a client: find or create the session.
            if !self.sessions.contains_key(&pkt.flow) {
                let down = self.down_proto.server_conn(pkt.flow, now);
                // The proxy's upstream leg never has cached 0-RTT state
                // (the paper's observed limitation).
                let up_flow = FlowId(self.next_up_flow);
                self.next_up_flow += 1;
                let up = self.up_proto.client_conn(up_flow, false, now);
                self.up_index.insert(up_flow, pkt.flow);
                self.sessions.insert(
                    pkt.flow,
                    Session {
                        down,
                        up,
                        client: pkt.src,
                        down_flow: pkt.flow,
                        up_flow,
                        map_up: BTreeMap::new(),
                        map_down: BTreeMap::new(),
                        pending_up: Vec::new(),
                        up_established: false,
                    },
                );
            }
            let sess = self.sessions.get_mut(&pkt.flow).expect("ensured above");
            sess.down.on_datagram(pkt.payload, now);
        }
        self.service(ctx);
    }

    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        for sess in self.sessions.values_mut() {
            sess.down.on_wakeup(now);
            sess.up.on_wakeup(now);
        }
        self.service(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longlook_http::app::{ClientApp, WebClient};
    use longlook_http::host::{ClientHost, ServerHost};
    use longlook_http::workload::PageSpec;
    use longlook_quic::QuicConfig;
    use longlook_sim::link::LinkConfig;
    use longlook_sim::schedule::RateSchedule;
    use longlook_sim::time::{Dur, Time};
    use longlook_sim::world::World;
    use longlook_sim::DeviceProfile;
    use longlook_tcp::TcpConfig;

    /// client --(leg)-- proxy --(leg)-- origin, both legs shaped.
    fn run_proxied(
        down: ProtoConfig,
        up: ProtoConfig,
        page: PageSpec,
        rate_mbps: f64,
        loss_each_leg: f64,
        seed: u64,
    ) -> Dur {
        let mut world = World::new(seed);
        let proxy_id = NodeId(1);
        let origin_id = NodeId(2);
        let mut client = ClientHost::new(proxy_id, true);
        client.add(
            FlowId(1),
            &down,
            true,
            Box::new(WebClient::new(page.clone())),
            Time::ZERO,
        );
        let c = world.add_node(Box::new(client), DeviceProfile::DESKTOP);
        let proxy = ProxyHost::new(origin_id, down, up.clone(), 1000);
        world.add_node(Box::new(proxy), DeviceProfile::SERVER);
        let origin = ServerHost::new(up, page, seed ^ 0x5555);
        world.add_node(Box::new(origin), DeviceProfile::SERVER);
        // Each leg carries half of a 36ms RTT.
        let leg = || {
            LinkConfig::shaped(
                RateSchedule::fixed_mbps(rate_mbps),
                Dur::from_millis(9),
                Dur::from_millis(18),
            )
            .with_loss(loss_each_leg)
        };
        world.connect(c, proxy_id, leg(), leg());
        world.connect(proxy_id, origin_id, leg(), leg());
        world.kick(c);
        world.run_until(Time::ZERO + Dur::from_secs(120));
        let app = world.agent::<ClientHost>(c).app::<WebClient>(0);
        assert!(app.done(), "proxied load must complete");
        app.plt().expect("finished")
    }

    fn quic() -> ProtoConfig {
        ProtoConfig::Quic(QuicConfig::default())
    }

    fn tcp() -> ProtoConfig {
        ProtoConfig::Tcp(TcpConfig::default())
    }

    #[test]
    fn tcp_proxy_end_to_end() {
        let plt = run_proxied(tcp(), tcp(), PageSpec::single(100 * 1024), 10.0, 0.0, 1);
        assert!(plt < Dur::from_secs(2), "plt = {plt}");
    }

    #[test]
    fn quic_proxy_end_to_end() {
        let plt = run_proxied(quic(), quic(), PageSpec::single(100 * 1024), 10.0, 0.0, 2);
        assert!(plt < Dur::from_secs(2), "plt = {plt}");
    }

    #[test]
    fn proxied_multi_object_page() {
        let plt = run_proxied(
            quic(),
            quic(),
            PageSpec::uniform(5, 50 * 1024),
            10.0,
            0.0,
            3,
        );
        assert!(plt < Dur::from_secs(5), "plt = {plt}");
    }

    #[test]
    fn proxy_recovers_loss_on_each_leg() {
        let plt = run_proxied(tcp(), tcp(), PageSpec::single(1024 * 1024), 10.0, 0.01, 4);
        assert!(plt < Dur::from_secs(30), "plt = {plt}");
    }
}
