//! Property-based tests for the QUIC wire format and reassembly
//! structures.

use bytes::Bytes;
use longlook_quic::recv_ack::AckTracker;
use longlook_quic::sent::{AckOutcome, SentPacket, SentSlab, SentTracker};
use longlook_quic::streams::{Chunk, RecvStream};
use longlook_quic::wire::{AckBlock, Frame, HandshakeKind, QuicPacket};
use longlook_sim::time::{Dur, Time};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), any::<u64>(), 0u32..100_000, any::<bool>()).prop_map(
            |(id, offset, len, fin)| Frame::Stream {
                id,
                offset,
                len,
                fin
            }
        ),
        (
            any::<u64>(),
            0u64..10_000_000,
            proptest::collection::vec((any::<u32>(), any::<u32>()), 0..10)
        )
            .prop_map(|(largest, delay, raw)| {
                let blocks: Vec<AckBlock> = raw
                    .into_iter()
                    .map(|(a, b)| {
                        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                        (lo as u64, hi as u64)
                    })
                    .collect();
                Frame::Ack {
                    largest,
                    ack_delay_us: delay,
                    blocks,
                }
            }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(stream, max_offset)| { Frame::WindowUpdate { stream, max_offset } }),
        (0u8..4, any::<u16>()).prop_map(|(k, pad)| Frame::Handshake {
            kind: match k {
                0 => HandshakeKind::InchoateChlo,
                1 => HandshakeKind::Rej,
                2 => HandshakeKind::FullChlo,
                _ => HandshakeKind::Shlo,
            },
            pad,
        }),
        Just(Frame::Ping),
        any::<u32>().prop_map(|stream| Frame::Blocked { stream }),
        any::<u32>().prop_map(|code| Frame::Close { code }),
    ]
}

proptest! {
    /// Encode/decode is the identity for arbitrary packets.
    #[test]
    fn packet_roundtrip(
        conn_id in any::<u64>(),
        pn in any::<u64>(),
        frames in proptest::collection::vec(arb_frame(), 0..8),
    ) {
        let pkt = QuicPacket { conn_id, pn, frames };
        let decoded = QuicPacket::decode(pkt.encode()).expect("roundtrip");
        prop_assert_eq!(decoded, pkt);
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decode_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = QuicPacket::decode(Bytes::from(data));
    }

    /// Stream reassembly delivers exactly the union of received ranges,
    /// regardless of arrival order and overlap.
    #[test]
    fn recv_stream_delivers_union(
        mut chunks in proptest::collection::vec((0u64..5_000, 1u32..800), 1..40),
        shuffle_seed in any::<u64>(),
    ) {
        // Deterministic shuffle.
        let mut s = shuffle_seed;
        for i in (1..chunks.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            chunks.swap(i, j);
        }
        let mut rs = RecvStream::default();
        let mut delivered = 0;
        for &(off, len) in &chunks {
            delivered += rs.on_chunk(off, len, false);
        }
        // Expected: length of the prefix of the union starting at 0.
        let mut intervals: Vec<(u64, u64)> =
            chunks.iter().map(|&(o, l)| (o, o + l as u64)).collect();
        intervals.sort_unstable();
        let mut reach = 0u64;
        for (s, e) in intervals {
            if s <= reach {
                reach = reach.max(e);
            } else {
                break;
            }
        }
        prop_assert_eq!(delivered, reach);
        prop_assert_eq!(rs.delivered(), reach);
    }

    /// Ack tracker blocks are disjoint, descending, and cover every
    /// inserted packet number (subject to the 32-block cap).
    #[test]
    fn ack_tracker_blocks_are_wellformed(
        pns in proptest::collection::btree_set(0u64..500, 1..80),
    ) {
        let mut t = AckTracker::default();
        for (i, &pn) in pns.iter().enumerate() {
            t.on_packet(
                pn,
                Time::ZERO + Dur::from_micros(i as u64),
                true,
                2,
                Dur::from_millis(25),
            );
        }
        let (largest, _, blocks) =
            t.build_ack(Time::ZERO + Dur::from_secs(1)).expect("non-empty");
        prop_assert_eq!(largest, *pns.iter().max().expect("non-empty"));
        // Descending, disjoint.
        for w in blocks.windows(2) {
            prop_assert!(w[0].0 > w[1].1, "blocks overlap or out of order: {:?}", blocks);
        }
        for &(s, e) in &blocks {
            prop_assert!(s <= e);
            for pn in s..=e {
                prop_assert!(pns.contains(&pn), "block covers unseen pn {pn}");
            }
        }
    }
}

proptest! {
    /// Encoding is canonical: re-encoding a decoded packet reproduces the
    /// exact byte sequence.
    #[test]
    fn encoding_is_canonical(
        conn_id in any::<u64>(),
        pn in any::<u64>(),
        frames in proptest::collection::vec(arb_frame(), 0..8),
    ) {
        let pkt = QuicPacket { conn_id, pn, frames };
        let bytes = pkt.encode();
        let reencoded = QuicPacket::decode(bytes.clone()).expect("valid").encode();
        prop_assert_eq!(reencoded.as_slice(), bytes.as_slice());
    }

    /// `wire_size` upper-bounds the materialized encoding (stream payload
    /// and handshake padding are synthetic — accounted, not serialized).
    #[test]
    fn wire_size_bounds_encoding(
        conn_id in any::<u64>(),
        pn in any::<u64>(),
        frames in proptest::collection::vec(arb_frame(), 0..8),
    ) {
        let pkt = QuicPacket { conn_id, pn, frames };
        prop_assert!(pkt.encode().len() as u32 <= pkt.wire_size());
    }

    /// Truncating an encoding never panics; when the truncation happens to
    /// land on a frame boundary the decode succeeds with a strict frame
    /// prefix of the original packet, never with reordered or altered
    /// frames.
    #[test]
    fn truncated_encoding_decodes_to_frame_prefix(
        conn_id in any::<u64>(),
        pn in any::<u64>(),
        frames in proptest::collection::vec(arb_frame(), 0..8),
        cut in any::<prop::sample::Index>(),
    ) {
        let pkt = QuicPacket { conn_id, pn, frames };
        let bytes = pkt.encode();
        let cut = cut.index(bytes.len() + 1);
        if let Ok(dec) = QuicPacket::decode(bytes.slice(0..cut)) {
            prop_assert_eq!(dec.conn_id, pkt.conn_id);
            prop_assert_eq!(dec.pn, pkt.pn);
            prop_assert!(dec.frames.len() <= pkt.frames.len());
            prop_assert_eq!(&dec.frames[..], &pkt.frames[..dec.frames.len()]);
        }
    }
}

/// One abstract sender-store operation; the interpreter below applies it
/// identically to the map tracker and the slab.
#[derive(Debug, Clone)]
enum StoreOp {
    /// Send `count` packets; bit `i` of `mask` makes packet `i`
    /// retransmittable (bare-ack otherwise).
    Send { count: u8, mask: u8 },
    /// Process one ack frame. `largest_jit` shifts `largest` around the
    /// newest sent pn (including *past* it — adversarial acks claiming
    /// unseen pns). `picks` selects acked pns; `thr` varies the NACK
    /// threshold mid-stream like the adaptive estimator does; `timed`
    /// additionally arms time-based loss detection.
    Ack {
        largest_jit: u8,
        picks: Vec<u8>,
        thr: u8,
        timed: bool,
    },
    /// RTO path: abandon up to `n` oldest packets (255 = whole flight,
    /// the PR-5 livelock shape).
    Rto { n: u8 },
}

fn arb_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (1u8..5, any::<u8>()).prop_map(|(count, mask)| StoreOp::Send { count, mask }),
        (
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 0..12),
            prop_oneof![Just(1u8), Just(2), Just(3), Just(6), Just(10)],
            any::<u8>().prop_map(|v| v % 5 == 0),
        )
            .prop_map(|(largest_jit, picks, thr, timed)| StoreOp::Ack {
                largest_jit,
                picks,
                thr,
                timed,
            }),
        prop_oneof![Just(1u8), Just(2), Just(255)].prop_map(|n| StoreOp::Rto { n }),
    ]
}

fn mk_pkt(pn: u64, ms: u64, retransmittable: bool) -> SentPacket {
    SentPacket {
        pn,
        sent_at: Time::ZERO + Dur::from_millis(ms),
        wire_bytes: if retransmittable { 1400 } else { 80 },
        chunks: if retransmittable {
            vec![Chunk {
                id: 1,
                offset: pn * 1350,
                len: 1350,
                fin: false,
            }]
        } else {
            vec![]
        },
        handshake: None,
        wu_streams: Vec::new(),
        retransmittable,
        nacks: 0,
    }
}

/// Turn an arbitrary pick set into disjoint ascending ack blocks over
/// `[0, top]` (real ack frames are always disjoint — both stores assume
/// it).
fn picks_to_blocks(picks: &[u8], top: u64) -> Vec<AckBlock> {
    let mut pns: Vec<u64> = picks.iter().map(|&p| p as u64 % (top + 1)).collect();
    pns.sort_unstable();
    pns.dedup();
    let mut blocks: Vec<AckBlock> = Vec::new();
    for pn in pns {
        match blocks.last_mut() {
            Some(&mut (_, ref mut e)) if *e + 1 == pn => *e = pn,
            _ => blocks.push((pn, pn)),
        }
    }
    blocks
}

fn outcomes_equal(a: &AckOutcome, b: &AckOutcome) -> bool {
    a.newly_acked_bytes == b.newly_acked_bytes
        && a.acked_payload_bytes == b.acked_payload_bytes
        && a.newest_acked_sent_at == b.newest_acked_sent_at
        && a.rtt_sample == b.rtt_sample
        && a.lost.iter().map(|p| p.pn).collect::<Vec<_>>()
            == b.lost.iter().map(|p| p.pn).collect::<Vec<_>>()
        && a.spurious == b.spurious
        && a.acked_new_data == b.acked_new_data
}

proptest! {
    /// The slab store is indistinguishable from the map store over
    /// arbitrary operation sequences: same ack outcomes (including loss
    /// *order*), same in-flight accounting, same spurious detection,
    /// through retransmission cycles, whole-flight RTO abandonment, and
    /// adaptive thresholds shifting between frames.
    #[test]
    fn slab_store_equivalent_to_map_store(
        ops in proptest::collection::vec(arb_store_op(), 1..50),
    ) {
        let mut map = SentTracker::default();
        let mut slab = SentSlab::default();
        let mut next_pn = 0u64;
        let mut ms = 0u64;
        for op in ops {
            match op {
                StoreOp::Send { count, mask } => {
                    for i in 0..count {
                        let retrans = mask & (1 << (i % 8)) != 0;
                        let pkt = mk_pkt(next_pn, ms, retrans);
                        map.on_sent(pkt.clone());
                        slab.on_sent(pkt);
                        next_pn += 1;
                        ms += 1;
                    }
                }
                StoreOp::Ack { largest_jit, picks, thr, timed } => {
                    if next_pn == 0 {
                        continue;
                    }
                    ms += 5;
                    // largest in [0, next_pn + 3]: past-the-end values
                    // exercise the adversarial below-horizon send path.
                    let largest = (largest_jit as u64) % (next_pn + 4);
                    let blocks = picks_to_blocks(&picks, next_pn - 1);
                    let now = Time::ZERO + Dur::from_millis(ms);
                    let tth = timed.then(|| Dur::from_millis(20));
                    let a = map.on_ack_frame(now, largest, Dur::ZERO, &blocks, thr as u32, tth);
                    let b = slab.on_ack_frame(now, largest, Dur::ZERO, &blocks, thr as u32, tth);
                    prop_assert!(
                        outcomes_equal(&a, &b),
                        "ack outcome diverged:\n map: {a:?}\nslab: {b:?}"
                    );
                }
                StoreOp::Rto { n } => {
                    let n = if n == 255 { usize::MAX } else { n as usize };
                    let a = map.declare_oldest_lost(n);
                    let b = slab.declare_oldest_lost(n);
                    prop_assert_eq!(
                        a.iter().map(|p| p.pn).collect::<Vec<_>>(),
                        b.iter().map(|p| p.pn).collect::<Vec<_>>()
                    );
                }
            }
            prop_assert_eq!(map.bytes_in_flight(), slab.bytes_in_flight());
            prop_assert_eq!(map.largest_acked(), slab.largest_acked());
            prop_assert_eq!(map.outstanding(), slab.outstanding());
            prop_assert_eq!(map.has_retransmittable(), slab.has_retransmittable());
            prop_assert_eq!(
                map.newest_retransmittable().map(|p| p.pn),
                slab.newest_retransmittable().map(|p| p.pn)
            );
        }
    }

    /// Ack processing depends only on the *set* of pns the blocks cover,
    /// never on how that set is partitioned into ranges: a frame carrying
    /// maximal coalesced ranges and one carrying the same set split into
    /// arbitrary finer blocks produce identical outcomes on both stores —
    /// same newly-acked bytes, largest-acked, and loss verdicts.
    #[test]
    fn ack_outcome_depends_only_on_covered_set(
        sent in 4u64..40,
        picks in proptest::collection::vec(any::<u8>(), 1..20),
        splits in proptest::collection::vec(any::<u8>(), 0..8),
        thr in 1u32..5,
    ) {
        // Coalesced blocks, then a finer partition of the same set.
        let coalesced = picks_to_blocks(&picks, sent - 1);
        let mut fine: Vec<AckBlock> = Vec::new();
        for (i, &(s, e)) in coalesced.iter().enumerate() {
            let cut = splits.get(i).map(|&c| s + (c as u64) % (e - s + 1));
            match cut {
                Some(c) if c < e => {
                    fine.push((s, c));
                    fine.push((c + 1, e));
                }
                _ => fine.push((s, e)),
            }
        }
        let largest = coalesced.last().map(|&(_, e)| e).unwrap_or(0);
        let now = Time::ZERO + Dur::from_millis(500);

        let run = |blocks: &[AckBlock]| {
            let mut map = SentTracker::default();
            let mut slab = SentSlab::default();
            for pn in 0..sent {
                map.on_sent(mk_pkt(pn, pn, true));
                slab.on_sent(mk_pkt(pn, pn, true));
            }
            let a = map.on_ack_frame(now, largest, Dur::ZERO, blocks, thr, None);
            let b = slab.on_ack_frame(now, largest, Dur::ZERO, blocks, thr, None);
            (a, b, map.bytes_in_flight(), slab.bytes_in_flight())
        };
        let (ca, cb, cm, cs) = run(&coalesced);
        let (fa, fb, fm, fs) = run(&fine);
        prop_assert!(outcomes_equal(&ca, &cb), "coalesced: map vs slab diverged");
        prop_assert!(outcomes_equal(&fa, &fb), "fine: map vs slab diverged");
        prop_assert!(outcomes_equal(&ca, &fa), "block partition changed the outcome");
        prop_assert_eq!(cm, fm);
        prop_assert_eq!(cs, fs);
    }

    /// Receiver-side coalescing is insertion-order-invariant: any arrival
    /// interleaving of a pn set yields the same maximal ranges and the
    /// same duplicate verdicts. This pins the in-order fast path in
    /// `AckTracker::insert` against the positional walk (shuffled orders
    /// exercise both).
    #[test]
    fn ack_tracker_coalescing_is_order_invariant(
        pns in proptest::collection::vec(0u64..60, 1..50),
        shuffle_seed in any::<u64>(),
    ) {
        use std::collections::BTreeSet;
        let mut shuffled = pns.clone();
        let mut s = shuffle_seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let feed = |order: &[u64]| {
            let mut t = AckTracker::default();
            let mut seen = BTreeSet::new();
            for (i, &pn) in order.iter().enumerate() {
                let dup = t.on_packet(
                    pn,
                    Time::ZERO + Dur::from_micros(i as u64),
                    true,
                    u32::MAX, // never trip decimation: build_ack once at the end
                    Dur::from_millis(25),
                );
                assert_eq!(dup, !seen.insert(pn), "duplicate verdict wrong for {pn}");
            }
            let (largest, _, blocks) =
                t.build_ack(Time::ZERO + Dur::from_secs(1)).expect("non-empty");
            (largest, blocks)
        };
        let (l1, b1) = feed(&pns);
        let (l2, b2) = feed(&shuffled);
        prop_assert_eq!(l1, l2);
        prop_assert_eq!(b1, b2, "ranges depend on arrival order");
    }
}

proptest! {
    /// Analytic sizing invariant: `encoded_len()` equals `encode().len()`
    /// exactly — per frame variant (single-frame packets isolate each) and
    /// for whole multi-frame packets. The structured wire path charges
    /// links using `encoded_len`, so any drift here would silently skew
    /// byte accounting versus the encoded path.
    #[test]
    fn encoded_len_matches_encode_per_frame(f in arb_frame()) {
        let pkt = QuicPacket { conn_id: 0, pn: 0, frames: vec![f] };
        prop_assert_eq!(pkt.encoded_len() as usize, pkt.encode().len());
    }

    #[test]
    fn encoded_len_matches_encode_for_packets(
        conn_id in prop_oneof![Just(u64::MAX), any::<u64>()],
        pn in prop_oneof![Just(u64::MAX), any::<u64>()],
        frames in proptest::collection::vec(arb_frame(), 0..8),
    ) {
        let pkt = QuicPacket { conn_id, pn, frames };
        prop_assert_eq!(pkt.encoded_len() as usize, pkt.encode().len());
    }

    /// The 255-block ack cap truncates `encode` and `encoded_len`
    /// identically, including at max-valued fields (the varint-free
    /// layout's widest edges).
    #[test]
    fn encoded_len_tracks_ack_block_cap(
        largest in prop_oneof![Just(u64::MAX), any::<u64>()],
        delay in prop_oneof![Just(u64::MAX), any::<u64>()],
        nblocks in 0usize..300,
    ) {
        let blocks: Vec<AckBlock> =
            (0..nblocks as u64).map(|i| (2 * i, 2 * i + 1)).collect();
        let f = Frame::Ack { largest, ack_delay_us: delay, blocks };
        let pkt = QuicPacket { conn_id: u64::MAX, pn: u64::MAX, frames: vec![f] };
        prop_assert_eq!(pkt.encoded_len() as usize, pkt.encode().len());
    }
}
