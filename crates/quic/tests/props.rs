//! Property-based tests for the QUIC wire format and reassembly
//! structures.

use bytes::Bytes;
use longlook_quic::recv_ack::AckTracker;
use longlook_quic::streams::RecvStream;
use longlook_quic::wire::{AckBlock, Frame, HandshakeKind, QuicPacket};
use longlook_sim::time::{Dur, Time};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), any::<u64>(), 0u32..100_000, any::<bool>()).prop_map(
            |(id, offset, len, fin)| Frame::Stream {
                id,
                offset,
                len,
                fin
            }
        ),
        (
            any::<u64>(),
            0u64..10_000_000,
            proptest::collection::vec((any::<u32>(), any::<u32>()), 0..10)
        )
            .prop_map(|(largest, delay, raw)| {
                let blocks: Vec<AckBlock> = raw
                    .into_iter()
                    .map(|(a, b)| {
                        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                        (lo as u64, hi as u64)
                    })
                    .collect();
                Frame::Ack {
                    largest,
                    ack_delay_us: delay,
                    blocks,
                }
            }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(stream, max_offset)| { Frame::WindowUpdate { stream, max_offset } }),
        (0u8..4, any::<u16>()).prop_map(|(k, pad)| Frame::Handshake {
            kind: match k {
                0 => HandshakeKind::InchoateChlo,
                1 => HandshakeKind::Rej,
                2 => HandshakeKind::FullChlo,
                _ => HandshakeKind::Shlo,
            },
            pad,
        }),
        Just(Frame::Ping),
        any::<u32>().prop_map(|stream| Frame::Blocked { stream }),
        any::<u32>().prop_map(|code| Frame::Close { code }),
    ]
}

proptest! {
    /// Encode/decode is the identity for arbitrary packets.
    #[test]
    fn packet_roundtrip(
        conn_id in any::<u64>(),
        pn in any::<u64>(),
        frames in proptest::collection::vec(arb_frame(), 0..8),
    ) {
        let pkt = QuicPacket { conn_id, pn, frames };
        let decoded = QuicPacket::decode(pkt.encode()).expect("roundtrip");
        prop_assert_eq!(decoded, pkt);
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decode_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = QuicPacket::decode(Bytes::from(data));
    }

    /// Stream reassembly delivers exactly the union of received ranges,
    /// regardless of arrival order and overlap.
    #[test]
    fn recv_stream_delivers_union(
        mut chunks in proptest::collection::vec((0u64..5_000, 1u32..800), 1..40),
        shuffle_seed in any::<u64>(),
    ) {
        // Deterministic shuffle.
        let mut s = shuffle_seed;
        for i in (1..chunks.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            chunks.swap(i, j);
        }
        let mut rs = RecvStream::default();
        let mut delivered = 0;
        for &(off, len) in &chunks {
            delivered += rs.on_chunk(off, len, false);
        }
        // Expected: length of the prefix of the union starting at 0.
        let mut intervals: Vec<(u64, u64)> =
            chunks.iter().map(|&(o, l)| (o, o + l as u64)).collect();
        intervals.sort_unstable();
        let mut reach = 0u64;
        for (s, e) in intervals {
            if s <= reach {
                reach = reach.max(e);
            } else {
                break;
            }
        }
        prop_assert_eq!(delivered, reach);
        prop_assert_eq!(rs.delivered(), reach);
    }

    /// Ack tracker blocks are disjoint, descending, and cover every
    /// inserted packet number (subject to the 32-block cap).
    #[test]
    fn ack_tracker_blocks_are_wellformed(
        pns in proptest::collection::btree_set(0u64..500, 1..80),
    ) {
        let mut t = AckTracker::default();
        for (i, &pn) in pns.iter().enumerate() {
            t.on_packet(
                pn,
                Time::ZERO + Dur::from_micros(i as u64),
                true,
                2,
                Dur::from_millis(25),
            );
        }
        let (largest, _, blocks) =
            t.build_ack(Time::ZERO + Dur::from_secs(1)).expect("non-empty");
        prop_assert_eq!(largest, *pns.iter().max().expect("non-empty"));
        // Descending, disjoint.
        for w in blocks.windows(2) {
            prop_assert!(w[0].0 > w[1].1, "blocks overlap or out of order: {:?}", blocks);
        }
        for &(s, e) in &blocks {
            prop_assert!(s <= e);
            for pn in s..=e {
                prop_assert!(pns.contains(&pn), "block covers unseen pn {pn}");
            }
        }
    }
}

proptest! {
    /// Encoding is canonical: re-encoding a decoded packet reproduces the
    /// exact byte sequence.
    #[test]
    fn encoding_is_canonical(
        conn_id in any::<u64>(),
        pn in any::<u64>(),
        frames in proptest::collection::vec(arb_frame(), 0..8),
    ) {
        let pkt = QuicPacket { conn_id, pn, frames };
        let bytes = pkt.encode();
        let reencoded = QuicPacket::decode(bytes.clone()).expect("valid").encode();
        prop_assert_eq!(reencoded.as_slice(), bytes.as_slice());
    }

    /// `wire_size` upper-bounds the materialized encoding (stream payload
    /// and handshake padding are synthetic — accounted, not serialized).
    #[test]
    fn wire_size_bounds_encoding(
        conn_id in any::<u64>(),
        pn in any::<u64>(),
        frames in proptest::collection::vec(arb_frame(), 0..8),
    ) {
        let pkt = QuicPacket { conn_id, pn, frames };
        prop_assert!(pkt.encode().len() as u32 <= pkt.wire_size());
    }

    /// Truncating an encoding never panics; when the truncation happens to
    /// land on a frame boundary the decode succeeds with a strict frame
    /// prefix of the original packet, never with reordered or altered
    /// frames.
    #[test]
    fn truncated_encoding_decodes_to_frame_prefix(
        conn_id in any::<u64>(),
        pn in any::<u64>(),
        frames in proptest::collection::vec(arb_frame(), 0..8),
        cut in any::<prop::sample::Index>(),
    ) {
        let pkt = QuicPacket { conn_id, pn, frames };
        let bytes = pkt.encode();
        let cut = cut.index(bytes.len() + 1);
        if let Ok(dec) = QuicPacket::decode(bytes.slice(0..cut)) {
            prop_assert_eq!(dec.conn_id, pkt.conn_id);
            prop_assert_eq!(dec.pn, pkt.pn);
            prop_assert!(dec.frames.len() <= pkt.frames.len());
            prop_assert_eq!(&dec.frames[..], &pkt.frames[..dec.frames.len()]);
        }
    }
}

proptest! {
    /// Analytic sizing invariant: `encoded_len()` equals `encode().len()`
    /// exactly — per frame variant (single-frame packets isolate each) and
    /// for whole multi-frame packets. The structured wire path charges
    /// links using `encoded_len`, so any drift here would silently skew
    /// byte accounting versus the encoded path.
    #[test]
    fn encoded_len_matches_encode_per_frame(f in arb_frame()) {
        let pkt = QuicPacket { conn_id: 0, pn: 0, frames: vec![f] };
        prop_assert_eq!(pkt.encoded_len() as usize, pkt.encode().len());
    }

    #[test]
    fn encoded_len_matches_encode_for_packets(
        conn_id in prop_oneof![Just(u64::MAX), any::<u64>()],
        pn in prop_oneof![Just(u64::MAX), any::<u64>()],
        frames in proptest::collection::vec(arb_frame(), 0..8),
    ) {
        let pkt = QuicPacket { conn_id, pn, frames };
        prop_assert_eq!(pkt.encoded_len() as usize, pkt.encode().len());
    }

    /// The 255-block ack cap truncates `encode` and `encoded_len`
    /// identically, including at max-valued fields (the varint-free
    /// layout's widest edges).
    #[test]
    fn encoded_len_tracks_ack_block_cap(
        largest in prop_oneof![Just(u64::MAX), any::<u64>()],
        delay in prop_oneof![Just(u64::MAX), any::<u64>()],
        nblocks in 0usize..300,
    ) {
        let blocks: Vec<AckBlock> =
            (0..nblocks as u64).map(|i| (2 * i, 2 * i + 1)).collect();
        let f = Frame::Ack { largest, ack_delay_us: delay, blocks };
        let pkt = QuicPacket { conn_id: u64::MAX, pn: u64::MAX, frames: vec![f] };
        prop_assert_eq!(pkt.encoded_len() as usize, pkt.encode().len());
    }
}
