//! The QUIC connection state machine.
//!
//! Implements [`longlook_transport::Connection`]: a sans-IO gQUIC-like
//! endpoint with 0-RTT/1-RTT handshake, multiplexed streams with two-level
//! flow control, ack decimation, NACK-threshold + optional time-based loss
//! detection, tail loss probes, RTO with backoff, Cubic or BBR congestion
//! control, pacing, and the Table 3 state instrumentation.

use crate::config::{CcKind, QuicConfig};
use crate::recv_ack::AckTracker;
use crate::sent::{SentPacket, SentStore};
use crate::streams::{Chunk, RecvStream, SendStream};
use crate::wire::{Frame, HandshakeKind, QuicPacket, MAX_ACK_BLOCKS, MAX_PACKET_PAYLOAD};
use longlook_sim::packet::Payload;
use longlook_sim::time::{Dur, Time};
use longlook_sim::trace::RecoveryKind;
use longlook_sim::{BatchMode, PayloadPool, Tracer, WireMode};
use longlook_transport::cc::CongestionControl;
use longlook_transport::ccstate::{CcState, StateTrace, StateTracker};
use longlook_transport::conn::{
    AppEvent, ConnError, ConnStats, Connection, StreamId, Transmit, UDP_OVERHEAD,
};
use longlook_transport::cubic::Cubic;
use longlook_transport::pacing::Pacer;
use longlook_transport::rtt::RttEstimator;
use longlook_transport::Bbr;
use std::collections::{BTreeMap, VecDeque};

/// Which end of the connection we are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Initiates the handshake.
    Client,
    /// Accepts it.
    Server,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Handshake {
    /// Client sent an inchoate CHLO and awaits the REJ (1-RTT path).
    AwaitingRej,
    /// Server awaits a CHLO.
    AwaitingChlo,
    /// Crypto complete; data flows.
    Established,
}

/// Loss timer kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LossTimer {
    Tlp,
    Rto,
}

/// A gQUIC-like connection.
pub struct QuicConnection {
    cfg: QuicConfig,
    role: Role,
    conn_id: u64,
    hs: Handshake,
    /// Handshake messages waiting to be sent.
    hs_queue: VecDeque<HandshakeKind>,
    /// Client learned the server config from a REJ (caller caches it to
    /// unlock 0-RTT next time).
    learned_server_config: bool,
    used_zero_rtt: bool,
    /// Server already sent a REJ refusing early data (one-shot).
    rej_sent: bool,
    /// Client's 0-RTT attempt was rejected; it fell back to 1-RTT.
    zero_rtt_rejected: bool,

    /// Construction instant: base for the handshake watchdog deadline.
    started_at: Time,
    /// Last inbound packet: base for the idle watchdog deadline.
    last_progress: Time,
    /// Watchdog tripped: the connection stopped trying (error may be
    /// muted by the test-only canary).
    gave_up: bool,
    error: Option<ConnError>,

    next_pn: u64,
    sent: SentStore,
    acks: AckTracker,
    rtt: RttEstimator,
    cc: Box<dyn CongestionControl>,
    pacer: Pacer,
    nack_threshold: u32,

    send_streams: BTreeMap<u32, SendStream>,
    recv_streams: BTreeMap<u32, RecvStream>,
    next_stream_id: u32,
    /// Streams we opened that the peer has not finished yet (MSPC gate).
    open_initiated: u32,
    /// Peer streams we've already announced via StreamOpened.
    seen_peer_streams: BTreeMap<u32, ()>,

    // Connection-level flow control.
    conn_send_limit: u64,
    conn_fresh_sent: u64,
    conn_delivered: u64,
    conn_advertised: u64,
    /// Current (auto-tuned) connection receive window.
    conn_window: u64,
    /// Current (auto-tuned) per-stream receive window.
    stream_window: u64,
    /// When the previous connection window update was queued.
    last_conn_update: Option<Time>,
    /// When the previous stream window update was queued (any stream).
    last_stream_update: Option<Time>,
    /// Per-stream advertised receive offsets.
    stream_advertised: BTreeMap<u32, u64>,
    /// Peer-announced stream send limits for streams we haven't opened a
    /// send side for yet (window updates can precede our first write).
    pending_stream_limits: BTreeMap<u32, u64>,
    /// Window updates queued for transmission: (stream, max_offset).
    wu_queue: VecDeque<(u32, u64)>,

    loss_timer: Option<(LossTimer, Time)>,
    /// Batched hot path: a pending loss-timer re-arm deferred to the next
    /// observation point (`next_wakeup`/`on_wakeup`). Re-arming is a pure
    /// function of connection state, and every re-arm request inside one
    /// dispatch shares the same `now`, so resolving only the *last* one
    /// lazily yields the exact timer the eager path would have set.
    loss_rearm_at: Option<Time>,
    /// Batched hot path selected (`LONGLOOK_BATCH`, at construction).
    batch: bool,
    tlp_count: u32,
    rto_backoff: u32,
    /// Probe transmission requested by the TLP timer.
    tlp_fire: bool,
    /// Sticky labels cleared by the next ack of new data.
    in_rto_state: bool,
    in_tlp_state: bool,

    pacing_deadline: Option<Time>,
    app_limited: bool,

    events: VecDeque<AppEvent>,
    handshake_done_emitted: bool,
    stats: ConnStats,
    cwnd_log: Vec<(Time, u64)>,
    tracker: StateTracker,
    /// Structured event trace (`LONGLOOK_TRACE`, at construction); a
    /// disabled tracer is an inlined no-op on every emit.
    tracer: Tracer,
    /// Recycled payload buffers (encoded path only): encoders take from
    /// here, spent received payloads are reclaimed in `on_datagram`.
    pool: PayloadPool,
    /// Recycled `Frame` vectors: received packets donate their (drained)
    /// frame storage, outgoing packets take it back — the vec flow
    /// mirrors the packet flow, so a steady ack-for-data exchange builds
    /// frames without touching the allocator.
    spare_frames: Vec<Vec<Frame>>,
    /// Structured (typed packets in memory) vs encoded (serialize +
    /// reparse) wire path; resolved from `LONGLOOK_WIRE` at construction.
    wire_mode: WireMode,
}

impl QuicConnection {
    /// Client connection. `zero_rtt` = the caller holds a cached server
    /// config for this destination.
    pub fn client(cfg: QuicConfig, conn_id: u64, zero_rtt: bool, now: Time) -> Self {
        let use_zero_rtt = zero_rtt && cfg.zero_rtt_enabled;
        let mut c = Self::new_common(cfg, conn_id, Role::Client, now);
        if use_zero_rtt {
            c.hs = Handshake::Established;
            c.used_zero_rtt = true;
            c.hs_queue.push_back(HandshakeKind::FullChlo);
            c.events.push_back(AppEvent::HandshakeDone);
            c.handshake_done_emitted = true;
        } else {
            c.hs = Handshake::AwaitingRej;
            c.hs_queue.push_back(HandshakeKind::InchoateChlo);
        }
        c.announce_windows();
        c
    }

    /// Server connection.
    pub fn server(cfg: QuicConfig, conn_id: u64, now: Time) -> Self {
        let mut c = Self::new_common(cfg, conn_id, Role::Server, now);
        c.hs = Handshake::AwaitingChlo;
        c.announce_windows();
        c
    }

    /// Announce our receive windows in the first flight (stand-in for
    /// gQUIC's handshake window negotiation): without this, a peer whose
    /// assumed defaults are *smaller* than our actual windows would stall
    /// waiting for updates we never send.
    fn announce_windows(&mut self) {
        self.conn_advertised = self.conn_window;
        self.wu_queue.push_back((0, self.conn_window));
    }

    fn new_common(cfg: QuicConfig, conn_id: u64, role: Role, now: Time) -> Self {
        let cc: Box<dyn CongestionControl> = match cfg.cc {
            CcKind::Cubic => Box::new(Cubic::new(cfg.cubic.clone(), now)),
            CcKind::Bbr => Box::new(Bbr::new(cfg.mss, now)),
        };
        let pacer = if cfg.pacing {
            Pacer::new(10 * cfg.mss)
        } else {
            Pacer::disabled()
        };
        let rtt = RttEstimator::new(cfg.initial_rtt);
        let next_stream_id = match role {
            Role::Client => 3,
            Role::Server => 2,
        };
        let nack_threshold = cfg.nack_threshold;
        let conn_send_limit = cfg.conn_recv_window;
        let conn_advertised = cfg.conn_recv_window;
        let cfg_conn_window = cfg.conn_recv_window;
        let cfg_stream_window = cfg.stream_recv_window;
        // BBR reports its own state vocabulary from the first instant
        // (Fig 3b has no Init state); Cubic overlays connection states.
        let initial_label = if cc.overlay_connection_states() {
            CcState::Init.label()
        } else {
            cc.state_label(now)
        };
        let mut tracer = Tracer::from_env();
        tracer.cc_state(now.as_nanos(), initial_label);
        QuicConnection {
            cfg,
            role,
            conn_id,
            hs: Handshake::AwaitingChlo,
            hs_queue: VecDeque::new(),
            learned_server_config: false,
            used_zero_rtt: false,
            rej_sent: false,
            zero_rtt_rejected: false,
            started_at: now,
            last_progress: now,
            gave_up: false,
            error: None,
            next_pn: 1,
            sent: SentStore::from_env(),
            acks: AckTracker::default(),
            rtt,
            cc,
            pacer,
            nack_threshold,
            send_streams: BTreeMap::new(),
            recv_streams: BTreeMap::new(),
            next_stream_id,
            open_initiated: 0,
            seen_peer_streams: BTreeMap::new(),
            conn_send_limit,
            conn_fresh_sent: 0,
            conn_delivered: 0,
            conn_advertised,
            conn_window: cfg_conn_window,
            stream_window: cfg_stream_window,
            last_conn_update: None,
            last_stream_update: None,
            stream_advertised: BTreeMap::new(),
            pending_stream_limits: BTreeMap::new(),
            wu_queue: VecDeque::new(),
            loss_timer: None,
            loss_rearm_at: None,
            batch: BatchMode::from_env().is_on(),
            tlp_count: 0,
            rto_backoff: 0,
            tlp_fire: false,
            in_rto_state: false,
            in_tlp_state: false,
            pacing_deadline: None,
            app_limited: false,
            events: VecDeque::new(),
            handshake_done_emitted: false,
            stats: ConnStats::default(),
            cwnd_log: vec![(now, 0)],
            tracker: StateTracker::new(now, initial_label),
            tracer,
            pool: PayloadPool::new(),
            spare_frames: Vec::new(),
            wire_mode: WireMode::from_env(),
        }
    }

    /// Whether the client learned a server config (populate 0-RTT cache).
    pub fn server_config_learned(&self) -> bool {
        self.learned_server_config || (self.role == Role::Client && self.used_zero_rtt)
    }

    /// Whether this connection actually used 0-RTT establishment.
    pub fn used_zero_rtt(&self) -> bool {
        self.used_zero_rtt
    }

    /// Whether a 0-RTT attempt was refused by the server and the client
    /// fell back to a full 1-RTT handshake.
    pub fn zero_rtt_rejected(&self) -> bool {
        self.zero_rtt_rejected
    }

    /// The effective NACK threshold (grows under `adaptive_nack`).
    pub fn current_nack_threshold(&self) -> u32 {
        self.nack_threshold
    }

    /// The connection id.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    fn establish(&mut self, _now: Time) {
        self.hs = Handshake::Established;
        if !self.handshake_done_emitted {
            self.events.push_back(AppEvent::HandshakeDone);
            self.handshake_done_emitted = true;
        }
    }

    fn on_handshake_frame(&mut self, kind: HandshakeKind, now: Time) {
        match (self.role, kind) {
            (Role::Server, HandshakeKind::InchoateChlo) if self.hs == Handshake::AwaitingChlo => {
                // The REJ carries a fresh server config, so any FullCHLO
                // that follows it is acceptable even under 0-RTT refusal.
                self.rej_sent = true;
                self.hs_queue.push_back(HandshakeKind::Rej);
            }
            (Role::Server, HandshakeKind::FullChlo) if self.hs != Handshake::Established => {
                self.establish(now);
                self.hs_queue.push_back(HandshakeKind::Shlo);
            }
            (Role::Client, HandshakeKind::Rej) if self.hs == Handshake::AwaitingRej => {
                self.learned_server_config = true;
                self.establish(now);
                self.hs_queue.push_back(HandshakeKind::FullChlo);
            }
            // 0-RTT rejection: the server refused our early data. Fall
            // back to 1-RTT — declare everything outstanding lost (the
            // server dropped it unacked), refresh the config, and
            // re-drive the full handshake. One-shot: a duplicated REJ
            // must not re-trigger the fallback (it falls to the ignore
            // arm below).
            (Role::Client, HandshakeKind::Rej)
                if self.hs == Handshake::Established
                    && self.used_zero_rtt
                    && !self.zero_rtt_rejected =>
            {
                self.zero_rtt_rejected = true;
                self.learned_server_config = true;
                let lost = self.sent.declare_oldest_lost(usize::MAX);
                let had_chlo = lost
                    .iter()
                    .any(|p| matches!(p.handshake, Some(HandshakeKind::FullChlo)));
                for pkt in &lost {
                    self.tracer.loss(now.as_nanos(), pkt.pn);
                    self.requeue_lost(pkt);
                }
                if !had_chlo {
                    self.hs_queue.push_back(HandshakeKind::FullChlo);
                }
                self.rearm_loss_timer(now);
            }
            (Role::Client, HandshakeKind::Shlo) => {
                // Forward secure keys; nothing further to do in the model.
            }
            _ => {} // Ignore nonsensical combinations.
        }
    }

    fn on_stream_frame(&mut self, id: u32, offset: u64, len: u32, fin: bool, now: Time) {
        // 0-RTT data on the server implies a valid cached config.
        if self.role == Role::Server && self.hs != Handshake::Established {
            self.establish(now);
            self.hs_queue.push_back(HandshakeKind::Shlo);
        }
        let peer_initiated = (id % 2) != (self.next_stream_id % 2);
        if peer_initiated && !self.seen_peer_streams.contains_key(&id) {
            self.seen_peer_streams.insert(id, ());
            self.events
                .push_back(AppEvent::StreamOpened(StreamId(id as u64)));
            self.stream_advertised.insert(id, self.stream_window);
            self.wu_queue.push_back((id, self.stream_window));
        }
        let stream = self.recv_streams.entry(id).or_default();
        let newly = stream.on_chunk(offset, len, fin);
        if newly > 0 {
            self.conn_delivered += newly;
            self.events.push_back(AppEvent::StreamData {
                id: StreamId(id as u64),
                bytes: newly,
            });
            self.maybe_queue_window_updates(id, now);
        }
        if self
            .recv_streams
            .get_mut(&id)
            .expect("just inserted")
            .take_fin()
        {
            self.events
                .push_back(AppEvent::StreamFin(StreamId(id as u64)));
            // A stream we initiated is finished by the peer: free an MSPC slot.
            if !peer_initiated {
                self.open_initiated = self.open_initiated.saturating_sub(1);
            }
        }
    }

    fn maybe_queue_window_updates(&mut self, id: u32, now: Time) {
        // gQUIC auto-tuning: if two consecutive updates are closer than
        // 2 x sRTT the window may be the bottleneck — double it (up to
        // the ceiling).
        let fast = |last: Option<Time>, srtt: Dur| -> bool {
            last.is_some_and(|t| now.saturating_since(t) < srtt * 2)
        };
        // Connection level.
        let target = self.conn_delivered + self.conn_window;
        if target.saturating_sub(self.conn_advertised) >= self.conn_window / 2 {
            if self.cfg.flow_auto_tune && fast(self.last_conn_update, self.rtt.srtt()) {
                self.conn_window = (self.conn_window * 2).min(self.cfg.conn_recv_window_max);
            }
            self.last_conn_update = Some(now);
            let target = self.conn_delivered + self.conn_window;
            self.conn_advertised = target;
            self.wu_queue.push_back((0, target));
        }
        // Stream level.
        let delivered = self.recv_streams.get(&id).map_or(0, |s| s.delivered());
        let adv = self
            .stream_advertised
            .entry(id)
            .or_insert(self.cfg.stream_recv_window);
        let target = delivered + self.stream_window;
        if target.saturating_sub(*adv) >= self.stream_window / 2 {
            if self.cfg.flow_auto_tune && fast(self.last_stream_update, self.rtt.srtt()) {
                self.stream_window = (self.stream_window * 2).min(self.cfg.stream_recv_window_max);
            }
            self.last_stream_update = Some(now);
            let target = delivered + self.stream_window;
            *adv = target;
            self.wu_queue.push_back((id, target));
        }
    }

    fn process_ack(&mut self, largest: u64, ack_delay_us: u64, blocks: &[(u64, u64)], now: Time) {
        let time_threshold = if self.cfg.time_loss_detection {
            Some(self.rtt.srtt().mul_f64(1.25))
        } else {
            None
        };
        let out = self.sent.on_ack_frame(
            now,
            largest,
            Dur::from_micros(ack_delay_us),
            blocks,
            self.nack_threshold,
            time_threshold,
        );
        if let Some(sample) = out.rtt_sample {
            self.rtt.on_sample(sample, Dur::from_micros(ack_delay_us));
        }
        if out.spurious > 0 {
            self.stats.spurious_retransmissions += out.spurious as u64;
            if self.cfg.adaptive_nack {
                // RR-TCP-style: grow the tolerance when reordering is
                // proven, up to a sane cap.
                self.nack_threshold = (self.nack_threshold * 2).min(64);
            }
        }
        if out.acked_new_data {
            self.tlp_count = 0;
            self.rto_backoff = 0;
            self.in_rto_state = false;
            self.in_tlp_state = false;
            self.stats.bytes_acked += out.acked_payload_bytes;
        }
        if out.newly_acked_bytes > 0 {
            self.cc.on_ack(
                now,
                out.newest_acked_sent_at.unwrap_or(now),
                out.newly_acked_bytes,
                &self.rtt,
                self.sent.bytes_in_flight(),
                self.app_limited,
            );
        }
        self.tracer.ack(now.as_nanos(), out.newly_acked_bytes);
        for lost in &out.lost {
            self.stats.losses_detected += 1;
            self.tracer.loss(now.as_nanos(), lost.pn);
            self.requeue_lost(lost);
            self.cc.on_congestion_event(
                now,
                lost.sent_at,
                lost.wire_bytes as u64,
                self.sent.bytes_in_flight(),
            );
        }
        self.rearm_loss_timer(now);
        self.log_cwnd(now);
    }

    fn requeue_lost(&mut self, lost: &SentPacket) {
        for chunk in &lost.chunks {
            self.stats.retransmissions += 1;
            if let Some(s) = self.send_streams.get_mut(&chunk.id) {
                s.on_chunk_lost(chunk);
            }
        }
        if let Some(kind) = lost.handshake {
            self.hs_queue.push_back(kind);
        }
        // Re-announce current flow-control windows that were lost with
        // this packet (idempotent: the peer takes the max).
        for &stream in &lost.wu_streams {
            let current = if stream == 0 {
                self.conn_advertised
            } else {
                self.stream_advertised
                    .get(&stream)
                    .copied()
                    .unwrap_or(self.stream_window)
            };
            self.wu_queue.push_back((stream, current));
        }
    }

    /// What the loss timer should be, re-armed at `now` — a pure function
    /// of connection state, shared by the eager and lazy re-arm paths.
    fn compute_loss_timer(&self, now: Time) -> Option<(LossTimer, Time)> {
        if !self.sent.has_retransmittable() {
            return None;
        }
        if self.cfg.tlp && self.tlp_count < 2 {
            Some((LossTimer::Tlp, now + self.rtt.tlp_timeout()))
        } else {
            let rto = self.rtt.rto().saturating_mul(1 << self.rto_backoff.min(6));
            Some((LossTimer::Rto, now + rto))
        }
    }

    fn rearm_loss_timer(&mut self, now: Time) {
        if self.tracer.enabled() {
            // Pure recomputation for the trace only: in batch mode the
            // deadline resolves lazily, but `compute_loss_timer` is a pure
            // function of state that cannot change between the request and
            // the observation point, so this records the same deadline the
            // eager path sets — identically under either `LONGLOOK_BATCH`.
            if let Some((_, at)) = self.compute_loss_timer(now) {
                self.tracer.timer_arm(now.as_nanos(), at.as_nanos());
            }
        }
        if self.batch {
            // Defer: the timer is unobservable until `next_wakeup` or the
            // next `on_wakeup`, and nothing that feeds `compute_loss_timer`
            // changes between the last re-arm request of a dispatch and
            // those observation points — resolving once there is exact.
            self.loss_rearm_at = Some(now);
        } else {
            self.loss_timer = self.compute_loss_timer(now);
        }
    }

    /// Apply a deferred re-arm before the timer is read mutably.
    fn resolve_loss_timer(&mut self) {
        if let Some(at) = self.loss_rearm_at.take() {
            self.loss_timer = self.compute_loss_timer(at);
        }
    }

    fn log_cwnd(&mut self, now: Time) {
        let cwnd = self.cc.cwnd();
        self.stats.max_cwnd = self.stats.max_cwnd.max(cwnd);
        if self.cwnd_log.last().map(|&(_, c)| c) != Some(cwnd) {
            self.cwnd_log.push((now, cwnd));
            self.tracer.cwnd(now.as_nanos(), cwnd);
        }
    }

    fn update_state(&mut self, now: Time) {
        let label = if !self.cc.overlay_connection_states() {
            self.cc.state_label(now)
        } else if self.hs != Handshake::Established {
            CcState::Init.label()
        } else if self.in_rto_state {
            CcState::RetransmissionTimeout.label()
        } else if self.in_tlp_state {
            CcState::TailLossProbe.label()
        } else {
            let cc_label = self.cc.state_label(now);
            if cc_label == CcState::Recovery.label() {
                cc_label
            } else if self.app_limited {
                CcState::ApplicationLimited.label()
            } else {
                cc_label
            }
        };
        self.tracker.set(now, label);
        self.tracer.cc_state(now.as_nanos(), label);
    }

    /// Does any stream have bytes or FINs ready (ignoring cc/pacing)?
    fn stream_data_pending(&self) -> bool {
        self.send_streams.values().any(SendStream::wants_to_send)
    }

    /// Watchdog trip: stop trying, clear every pending timer and queue so
    /// the connection reads as quiescent, and surface the typed error —
    /// unless the test-only canary mutes it (the silent-livelock bug the
    /// fuzzer oracle exists to catch).
    fn give_up(&mut self, err: ConnError, now: Time) {
        self.gave_up = true;
        self.tracer.recovery(now.as_nanos(), RecoveryKind::GiveUp);
        if !self.cfg.canary_mute_watchdog {
            self.error = Some(err);
        }
        self.hs_queue.clear();
        self.loss_timer = None;
        self.loss_rearm_at = None;
        self.pacing_deadline = None;
        self.tlp_fire = false;
    }

    /// Check the armed watchdog at `now`, tripping it when a deadline
    /// passed. Handshake phase uses the construction-relative deadline;
    /// established connections time out on inbound silence, but only
    /// while work is actually outstanding (a finished, idle connection
    /// never times out).
    fn check_watchdog(&mut self, now: Time) {
        if !self.cfg.watchdog || self.gave_up {
            return;
        }
        if self.hs != Handshake::Established {
            if now >= self.started_at + self.cfg.handshake_timeout {
                self.give_up(ConnError::HandshakeTimeout, now);
            }
        } else if !self.is_quiescent() && now >= self.last_progress + self.cfg.idle_timeout {
            self.give_up(ConnError::IdleTimeout, now);
        }
    }

    fn frame_budget(used: u32) -> u32 {
        MAX_PACKET_PAYLOAD.saturating_sub(used)
    }

    /// Assemble and account one outgoing packet from `frames`.
    fn finalize_packet(
        &mut self,
        frames: Vec<Frame>,
        chunks: Vec<Chunk>,
        handshake: Option<HandshakeKind>,
        retransmittable: bool,
        now: Time,
    ) -> Transmit {
        let pn = self.next_pn;
        self.next_pn += 1;
        // Window updates are rare; only allocate the id list when one is
        // actually aboard.
        let has_wu = frames
            .iter()
            .any(|f| matches!(f, Frame::WindowUpdate { .. }));
        let wu_streams: Vec<u32> = if has_wu {
            frames
                .iter()
                .filter_map(|f| match f {
                    Frame::WindowUpdate { stream, .. } => Some(*stream),
                    _ => None,
                })
                .collect()
        } else {
            Vec::new()
        };
        let pkt = QuicPacket {
            conn_id: self.conn_id,
            pn,
            frames,
        };
        let wire_size = pkt.wire_size() + UDP_OVERHEAD;
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += wire_size as u64;
        self.tracer
            .pkt_tx(now.as_nanos(), pn, wire_size as u64, retransmittable);
        if !retransmittable {
            self.stats.acks_sent += 1;
        }
        self.sent.on_sent(SentPacket {
            pn,
            sent_at: now,
            wire_bytes: wire_size,
            chunks,
            handshake,
            wu_streams,
            retransmittable,
            nacks: 0,
        });
        if retransmittable {
            self.cc
                .on_packet_sent(now, wire_size as u64, self.sent.bytes_in_flight());
            let rate = self.cc.pacing_rate_bps(&self.rtt);
            self.pacer.on_sent(now, wire_size as u64, rate);
            self.rearm_loss_timer(now);
        }
        let payload = match self.wire_mode {
            WireMode::Structured => Payload::Quic(pkt),
            WireMode::Encoded => {
                // The typed packet dies here after encoding; keep its
                // frame storage for the next build.
                let bytes = pkt.encode_with(&mut self.pool);
                let mut frames = pkt.frames;
                frames.clear();
                if self.spare_frames.len() < 8 {
                    self.spare_frames.push(frames);
                }
                Payload::Wire(bytes)
            }
        };
        Transmit { payload, wire_size }
    }
}

impl Connection for QuicConnection {
    fn on_datagram(&mut self, payload: Payload, now: Time) {
        self.stats.packets_received += 1;
        let pkt = match payload {
            // Structured fast path: the typed packet arrives by value.
            Payload::Quic(p) => p,
            Payload::Wire(bytes) => {
                // Decode borrows the payload so the spent buffer can be
                // reclaimed into the pool afterwards (sole-owner fast
                // path — no refcount bump, no clone).
                let decoded = QuicPacket::decode(&bytes[..]);
                self.pool.reclaim(bytes);
                match decoded {
                    Ok(p) => p,
                    Err(_) => return, // corrupt packets are dropped silently
                }
            }
            // Flow demux never routes a TCP segment here; treat one like
            // an undecodable datagram.
            Payload::Tcp(_) => return,
        };
        if self.gave_up {
            return;
        }
        self.last_progress = now;
        if self.tracer.enabled() {
            // Analytic sizing is proptest-pinned to the encoded length,
            // so recomputing it here is wire-mode invariant.
            let sz = (pkt.wire_size() + UDP_OVERHEAD) as u64;
            self.tracer.pkt_rx(now.as_nanos(), pkt.pn, sz);
        }
        // 0-RTT rejection: a server whose cached config expired must not
        // process — or ack — early data arriving before the handshake. The
        // whole flight is dropped and a single REJ queued; the client
        // replays everything after its fallback. Once the REJ is out,
        // the retransmitted FullCHLO takes the normal 1-RTT accept path.
        if self.role == Role::Server
            && self.hs != Handshake::Established
            && !self.cfg.zero_rtt_accept
            && !self.rej_sent
            && pkt.frames.iter().any(|f| {
                matches!(f, Frame::Stream { .. })
                    || matches!(
                        f,
                        Frame::Handshake {
                            kind: HandshakeKind::FullChlo,
                            ..
                        }
                    )
            })
        {
            self.rej_sent = true;
            self.hs_queue.push_back(HandshakeKind::Rej);
            self.update_state(now);
            return;
        }
        let retransmittable = pkt.frames.iter().any(|f| {
            matches!(
                f,
                Frame::Stream { .. } | Frame::Handshake { .. } | Frame::WindowUpdate { .. }
            )
        });
        self.acks.on_packet(
            pkt.pn,
            now,
            retransmittable,
            self.cfg.ack_every,
            self.cfg.delayed_ack,
        );
        let mut frames = pkt.frames;
        for frame in frames.drain(..) {
            match frame {
                Frame::Stream {
                    id,
                    offset,
                    len,
                    fin,
                } => self.on_stream_frame(id, offset, len, fin, now),
                Frame::Ack {
                    largest,
                    ack_delay_us,
                    blocks,
                } => self.process_ack(largest, ack_delay_us, &blocks, now),
                Frame::WindowUpdate { stream, max_offset } => {
                    if stream == 0 {
                        self.conn_send_limit = self.conn_send_limit.max(max_offset);
                    } else if let Some(s) = self.send_streams.get_mut(&stream) {
                        s.on_window_update(max_offset);
                    } else {
                        // The send side doesn't exist yet; remember the
                        // limit for when the application first writes.
                        let e = self.pending_stream_limits.entry(stream).or_insert(0);
                        *e = (*e).max(max_offset);
                    }
                }
                Frame::Handshake { kind, .. } => self.on_handshake_frame(kind, now),
                Frame::Ping | Frame::Blocked { .. } | Frame::Close { .. } => {}
            }
        }
        if self.spare_frames.len() < 8 {
            self.spare_frames.push(frames);
        }
        self.update_state(now);
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Transmit> {
        if self.gave_up {
            return None;
        }
        let mut frames: Vec<Frame> = self.spare_frames.pop().unwrap_or_default();
        debug_assert!(frames.is_empty());
        let mut chunks: Vec<Chunk> = self.sent.take_spare_chunks();
        debug_assert!(chunks.is_empty());
        let mut used = 0u32;
        let mut retransmittable = false;

        // 1. Handshake messages (highest priority, not pacing/cc gated —
        //    they are few and must flow for anything else to work).
        let handshake = self.hs_queue.pop_front();
        if let Some(kind) = handshake {
            let pad = match kind {
                HandshakeKind::InchoateChlo => 1200, // padded per gQUIC
                HandshakeKind::Rej => 1300,          // server config + certs
                HandshakeKind::FullChlo => 900,
                HandshakeKind::Shlo => 300,
            };
            let f = Frame::Handshake { kind, pad };
            used += f.wire_size();
            frames.push(f);
            retransmittable = true;
        }

        // 2. Ack if due.
        if self.acks.ack_due(now, self.cfg.ack_every) {
            if let Some((largest, delay, mut blocks)) = self.acks.build_ack(now) {
                // Canonicalize to the wire's block cap at build time so a
                // structured packet carries exactly what an encode→decode
                // round trip would deliver.
                blocks.truncate(MAX_ACK_BLOCKS);
                let f = Frame::Ack {
                    largest,
                    ack_delay_us: (delay.as_nanos() / 1000),
                    blocks,
                };
                used += f.wire_size();
                frames.push(f);
            }
        }

        // 3. Window updates.
        while used + 13 <= MAX_PACKET_PAYLOAD {
            let Some((stream, max_offset)) = self.wu_queue.pop_front() else {
                break;
            };
            let f = Frame::WindowUpdate { stream, max_offset };
            used += f.wire_size();
            frames.push(f);
            retransmittable = true;
        }

        // 4. Stream data, gated by cc + pacing + flow control. A TLP probe
        //    bypasses the congestion window.
        if self.hs == Handshake::Established {
            let probe = std::mem::take(&mut self.tlp_fire);
            if probe {
                // Retransmit the newest outstanding packet's payload.
                let probe_chunks: Vec<Chunk> = self
                    .sent
                    .newest_retransmittable()
                    .map(|p| p.chunks.clone())
                    .unwrap_or_default();
                for c in &probe_chunks {
                    frames.push(Frame::Stream {
                        id: c.id,
                        offset: c.offset,
                        len: c.len,
                        fin: c.fin,
                    });
                    chunks.push(*c);
                    retransmittable = true;
                }
                if probe_chunks.is_empty() {
                    frames.push(Frame::Ping);
                    retransmittable = true;
                }
            } else {
                let mut sent_any_data = false;
                let mut data_was_available = false;
                let mut pacing_blocked = false;
                // cc state is constant within one poll, so the pacing rate
                // is too; compute it at most once (identical f64 value).
                let mut cached_rate: Option<f64> = None;
                loop {
                    let budget = Self::frame_budget(used).saturating_sub(18);
                    if budget < 16 {
                        break;
                    }
                    if !self.cc.can_send(
                        self.sent.bytes_in_flight(),
                        budget.min(self.cfg.mss as u32) as u64,
                    ) {
                        break;
                    }
                    // Pacing gate applies to data only.
                    let rate = match cached_rate {
                        Some(r) => r,
                        None => {
                            let r = self.cc.pacing_rate_bps(&self.rtt);
                            cached_rate = Some(r);
                            r
                        }
                    };
                    let ready = self.pacer.earliest_send(now, self.cfg.mss, rate);
                    if ready > now {
                        self.pacing_deadline = Some(ready);
                        pacing_blocked = true;
                        break;
                    }
                    // Connection-level flow control for fresh data.
                    let conn_room = self.conn_send_limit.saturating_sub(self.conn_fresh_sent);
                    // Round-robin across streams with pending chunks
                    // (in-place iteration, no key-list allocation; the
                    // fresh-sent update is deferred past the borrow).
                    let mut got: Option<Chunk> = None;
                    let mut fresh_sent = 0u64;
                    for s in self.send_streams.values_mut() {
                        let had_retransmit = s.has_retransmit_pending();
                        let fresh_ok = s.sendable_new().min(conn_room) > 0 || s.fin_pending();
                        if !had_retransmit && !fresh_ok {
                            continue;
                        }
                        data_was_available = true;
                        // Cap fresh sends by connection flow control.
                        let cap = if had_retransmit {
                            budget
                        } else {
                            budget.min(conn_room.min(u32::MAX as u64) as u32)
                        };
                        if let Some(chunk) = s.next_chunk(cap) {
                            if !had_retransmit {
                                fresh_sent = chunk.len as u64;
                            }
                            got = Some(chunk);
                            break;
                        }
                    }
                    self.conn_fresh_sent += fresh_sent;
                    match got {
                        Some(chunk) => {
                            let f = Frame::Stream {
                                id: chunk.id,
                                offset: chunk.offset,
                                len: chunk.len,
                                fin: chunk.fin,
                            };
                            used += f.wire_size();
                            frames.push(f);
                            chunks.push(chunk);
                            retransmittable = true;
                            sent_any_data = true;
                        }
                        None => break,
                    }
                }
                // Application-limited: window open but nothing to send.
                // A pacing-deferred send is *not* application-limited —
                // the data exists and will go out at the pacer's release.
                self.app_limited = !sent_any_data
                    && !data_was_available
                    && !pacing_blocked
                    && self.cc.can_send(self.sent.bytes_in_flight(), self.cfg.mss)
                    && self.sent.bytes_in_flight() < self.cc.cwnd();
                if sent_any_data {
                    self.app_limited = false;
                }
            }
        }

        self.update_state(now);
        if frames.is_empty() {
            // Nothing to send: hand the recycled storage straight back.
            if self.spare_frames.len() < 8 {
                self.spare_frames.push(frames);
            }
            self.sent.give_spare_chunks(chunks);
            return None;
        }
        Some(self.finalize_packet(frames, chunks, handshake, retransmittable, now))
    }

    fn next_wakeup(&self) -> Option<Time> {
        if self.gave_up {
            return None;
        }
        let mut t: Option<Time> = None;
        let mut consider = |cand: Option<Time>| {
            if let Some(c) = cand {
                t = Some(match t {
                    Some(cur) if cur <= c => cur,
                    _ => c,
                });
            }
        };
        // A deferred re-arm resolves here without mutation: the pure
        // computation sees exactly the state the eager path saw.
        let loss_timer = match self.loss_rearm_at {
            Some(at) => self.compute_loss_timer(at),
            None => self.loss_timer,
        };
        consider(loss_timer.map(|(_, at)| at));
        consider(self.acks.deadline());
        consider(self.pacing_deadline);
        if self.cfg.watchdog {
            // The watchdog only schedules a wake while there is work it
            // could give up on; a quiescent connection stays silent so
            // unfaulted runs still end in the Idle outcome.
            if self.hs != Handshake::Established {
                consider(Some(self.started_at + self.cfg.handshake_timeout));
            } else if !self.is_quiescent() {
                consider(Some(self.last_progress + self.cfg.idle_timeout));
            }
        }
        t
    }

    fn on_wakeup(&mut self, now: Time) {
        self.resolve_loss_timer();
        self.check_watchdog(now);
        if self.gave_up {
            return;
        }
        if let Some(d) = self.pacing_deadline {
            if now >= d {
                self.pacing_deadline = None;
            }
        }
        if let Some((kind, at)) = self.loss_timer {
            if now >= at && self.sent.has_retransmittable() {
                match kind {
                    LossTimer::Tlp => {
                        self.tracer.timer_fire(now.as_nanos(), RecoveryKind::Tlp);
                        self.tracer.recovery(now.as_nanos(), RecoveryKind::Tlp);
                        self.tlp_count += 1;
                        self.stats.tlp_count += 1;
                        self.in_tlp_state = true;
                        self.tlp_fire = true;
                        self.rearm_loss_timer(now);
                    }
                    LossTimer::Rto => {
                        self.tracer.timer_fire(now.as_nanos(), RecoveryKind::Rto);
                        self.tracer.recovery(now.as_nanos(), RecoveryKind::Rto);
                        self.stats.rto_count += 1;
                        self.in_rto_state = true;
                        // A repeated timeout with no ack in between means
                        // the whole flight is gone (link outage), not a
                        // stray tail drop: declare everything lost so the
                        // requeued data isn't forever gated by a flight
                        // full of dead packets. First RTOs keep the
                        // conservative oldest-2 declaration.
                        let cap = if self.rto_backoff > 0 { usize::MAX } else { 2 };
                        let lost = self.sent.declare_oldest_lost(cap);
                        for pkt in &lost {
                            self.tracer.loss(now.as_nanos(), pkt.pn);
                            self.requeue_lost(pkt);
                        }
                        self.cc.on_rto(now);
                        self.rto_backoff += 1;
                        self.rearm_loss_timer(now);
                        self.log_cwnd(now);
                    }
                }
            } else if now >= at {
                self.loss_timer = None;
            }
        }
        self.update_state(now);
    }

    fn open_stream(&mut self, _now: Time) -> Option<StreamId> {
        if self.open_initiated >= self.cfg.max_streams {
            return None;
        }
        let id = self.next_stream_id;
        self.next_stream_id += 2;
        self.open_initiated += 1;
        self.send_streams
            .insert(id, SendStream::with_window(id, self.cfg.stream_recv_window));
        // Announce our receive window for this stream (the peer assumes
        // its own default otherwise).
        self.stream_advertised.insert(id, self.stream_window);
        self.wu_queue.push_back((id, self.stream_window));
        Some(StreamId(id as u64))
    }

    fn stream_send(&mut self, _now: Time, id: StreamId, bytes: u64, fin: bool) {
        let id = id.0 as u32;
        let window = self
            .pending_stream_limits
            .remove(&id)
            .unwrap_or(0)
            .max(self.cfg.stream_recv_window);
        let s = self
            .send_streams
            .entry(id)
            .or_insert_with(|| SendStream::with_window(id, window));
        s.write(bytes, fin);
        self.app_limited = false;
    }

    fn poll_event(&mut self) -> Option<AppEvent> {
        self.events.pop_front()
    }

    fn is_established(&self) -> bool {
        self.hs == Handshake::Established
    }

    fn is_quiescent(&self) -> bool {
        self.gave_up
            || (!self.sent.has_retransmittable()
                && self.hs_queue.is_empty()
                && !self.stream_data_pending())
    }

    fn stats(&self) -> ConnStats {
        self.stats
    }

    fn cwnd_timeline(&self) -> &[(Time, u64)] {
        &self.cwnd_log
    }

    fn state_trace(&self, now: Time) -> StateTrace {
        self.tracker.finish(now)
    }

    fn srtt(&self) -> Dur {
        self.rtt.srtt()
    }

    fn trace_records(&self) -> &[longlook_sim::trace::TraceRecord] {
        self.tracer.records()
    }

    fn error(&self) -> Option<ConnError> {
        self.error
    }
}
