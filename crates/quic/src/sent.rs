//! Sender-side packet tracking and loss detection.
//!
//! This is where QUIC's defining sender behaviors live:
//!
//! * **No retransmission ambiguity** — packet numbers are monotonic, every
//!   ack maps to exactly one transmission, so every ack can produce an RTT
//!   sample (TCP's Karn restriction does not apply);
//! * **NACK-threshold fast retransmit** — a packet is declared lost after
//!   being "nacked" by `nack_threshold` acks covering later packets
//!   (default 3). The paper shows this fixed threshold misclassifies
//!   reordered packets as lost (Sec 5.2, Fig 10);
//! * **spurious-retransmission detection** — an ack arriving for a packet
//!   already declared lost proves the retransmission spurious, feeding
//!   both statistics and the optional adaptive threshold.

use crate::streams::Chunk;
use crate::wire::{AckBlock, HandshakeKind};
use longlook_sim::time::{Dur, Time};
use longlook_sim::BatchMode;
use std::collections::{BTreeMap, VecDeque};
use std::mem;

/// Bookkeeping for one transmitted packet.
#[derive(Debug, Clone)]
pub struct SentPacket {
    /// Packet number.
    pub pn: u64,
    /// Transmission time.
    pub sent_at: Time,
    /// Full wire size (for in-flight accounting).
    pub wire_bytes: u32,
    /// Stream chunks carried (requeued on loss).
    pub chunks: Vec<Chunk>,
    /// Handshake message carried (retransmitted on loss).
    pub handshake: Option<HandshakeKind>,
    /// Streams whose window updates rode in this packet (0 = connection);
    /// on loss the *current* windows are re-announced.
    pub wu_streams: Vec<u32>,
    /// Whether the packet counts toward bytes in flight and needs acking.
    pub retransmittable: bool,
    /// Times this packet has been nacked.
    pub nacks: u32,
}

/// What an incoming ack frame did.
#[derive(Debug, Default)]
pub struct AckOutcome {
    /// Retransmittable wire bytes newly acknowledged.
    pub newly_acked_bytes: u64,
    /// Stream payload bytes newly acknowledged.
    pub acked_payload_bytes: u64,
    /// Send time of the newest packet this ack covers (for CC epochs).
    pub newest_acked_sent_at: Option<Time>,
    /// RTT measurement from the largest acked packet, if it was newly
    /// acked by this frame.
    pub rtt_sample: Option<Dur>,
    /// Packets declared lost by this ack (NACK threshold / time).
    pub lost: Vec<SentPacket>,
    /// Previously-declared-lost packets now proven delivered.
    pub spurious: u32,
    /// Whether any new data was acked (resets TLP/RTO backoff).
    pub acked_new_data: bool,
}

/// Sender-side tracker.
#[derive(Debug, Default)]
pub struct SentTracker {
    packets: BTreeMap<u64, SentPacket>,
    bytes_in_flight: u64,
    largest_acked: Option<u64>,
    /// Packets declared lost, retained briefly to detect spuriousness.
    lost_log: BTreeMap<u64, Time>,
}

impl SentTracker {
    /// Record a transmission.
    pub fn on_sent(&mut self, pkt: SentPacket) {
        if pkt.retransmittable {
            self.bytes_in_flight += pkt.wire_bytes as u64;
        }
        let prev = self.packets.insert(pkt.pn, pkt);
        debug_assert!(prev.is_none(), "packet number reused");
    }

    /// Retransmittable bytes currently outstanding.
    pub fn bytes_in_flight(&self) -> u64 {
        self.bytes_in_flight
    }

    /// Whether any retransmittable packet is outstanding.
    pub fn has_retransmittable(&self) -> bool {
        self.bytes_in_flight > 0
    }

    /// Largest acked packet number.
    pub fn largest_acked(&self) -> Option<u64> {
        self.largest_acked
    }

    /// Clone of the newest outstanding retransmittable packet (for TLP).
    pub fn newest_retransmittable(&self) -> Option<&SentPacket> {
        self.packets.values().rev().find(|p| p.retransmittable)
    }

    /// Declare up to `n` oldest retransmittable packets lost (for RTO);
    /// returns them with in-flight accounting updated and spurious
    /// tracking armed.
    pub fn declare_oldest_lost(&mut self, n: usize) -> Vec<SentPacket> {
        let pns: Vec<u64> = self
            .packets
            .values()
            .filter(|p| p.retransmittable)
            .take(n)
            .map(|p| p.pn)
            .collect();
        let mut out = Vec::with_capacity(pns.len());
        for pn in pns {
            if let Some(pkt) = self.remove_in_flight(pn) {
                self.lost_log.insert(pkt.pn, pkt.sent_at);
                out.push(pkt);
            }
        }
        out
    }

    fn remove_in_flight(&mut self, pn: u64) -> Option<SentPacket> {
        let pkt = self.packets.remove(&pn)?;
        if pkt.retransmittable {
            self.bytes_in_flight -= pkt.wire_bytes as u64;
        }
        Some(pkt)
    }

    /// Process an ack frame. `time_threshold` (if set) additionally marks
    /// packets lost once they are older than that relative to `now` and
    /// below the largest acked pn.
    pub fn on_ack_frame(
        &mut self,
        now: Time,
        largest: u64,
        ack_delay: Dur,
        blocks: &[AckBlock],
        nack_threshold: u32,
        time_threshold: Option<Dur>,
    ) -> AckOutcome {
        let _ = ack_delay; // rtt adjustment is done by the caller's estimator
        let mut out = AckOutcome::default();

        // Collect newly acked pns present in our map.
        let mut acked: Vec<u64> = Vec::new();
        for &(start, end) in blocks {
            let in_range: Vec<u64> = self.packets.range(start..=end).map(|(&pn, _)| pn).collect();
            acked.extend(in_range);
        }
        acked.sort_unstable();

        for pn in acked {
            let pkt = self.remove_in_flight(pn).expect("collected above");
            if pkt.retransmittable {
                out.newly_acked_bytes += pkt.wire_bytes as u64;
                out.acked_payload_bytes += pkt.chunks.iter().map(|c| c.len as u64).sum::<u64>();
                out.acked_new_data = true;
            }
            out.newest_acked_sent_at = Some(match out.newest_acked_sent_at {
                Some(t) if t > pkt.sent_at => t,
                _ => pkt.sent_at,
            });
            if pn == largest {
                out.rtt_sample = Some(now.saturating_since(pkt.sent_at));
            }
        }

        // Spurious detection: acked pns we had declared lost.
        for &(start, end) in blocks {
            let hits: Vec<u64> = self
                .lost_log
                .range(start..=end)
                .map(|(&pn, _)| pn)
                .collect();
            for pn in hits {
                self.lost_log.remove(&pn);
                out.spurious += 1;
            }
        }

        self.largest_acked = Some(self.largest_acked.map_or(largest, |l| l.max(largest)));
        let horizon = self.largest_acked.expect("just set");

        // NACK counting: every unacked packet below the largest acked gets
        // one nack per ack frame processed.
        let mut lost_pns: Vec<u64> = Vec::new();
        for (&pn, pkt) in self.packets.range_mut(..horizon) {
            if !pkt.retransmittable {
                continue;
            }
            pkt.nacks += 1;
            let nack_lost = pkt.nacks >= nack_threshold;
            let time_lost = time_threshold.is_some_and(|th| now.saturating_since(pkt.sent_at) > th);
            if nack_lost || time_lost {
                lost_pns.push(pn);
            }
        }
        for pn in lost_pns {
            let pkt = self.remove_in_flight(pn).expect("present");
            self.lost_log.insert(pkt.pn, pkt.sent_at);
            out.lost.push(pkt);
        }

        self.prune_lost_log();
        out
    }

    fn prune_lost_log(&mut self) {
        if let Some(horizon) = self.largest_acked {
            let cutoff = horizon.saturating_sub(10_000);
            self.lost_log = self.lost_log.split_off(&cutoff);
        }
    }

    /// Outstanding packet count (diagnostics).
    pub fn outstanding(&self) -> usize {
        self.packets.len()
    }
}

/// First index in `tags[i..end]` holding a live (non-zero) tag, or `end`.
/// Tombstone runs dominate the ack-scan window, so skip them eight tags
/// at a time before finishing byte-wise.
#[inline]
fn next_live_tag(tags: &[u8], mut i: usize, end: usize) -> usize {
    while i + 8 <= end {
        let w = u64::from_le_bytes(tags[i..i + 8].try_into().expect("8-byte slice"));
        if w == 0 {
            i += 8;
        } else {
            return i + (w.trailing_zeros() / 8) as usize;
        }
    }
    while i < end && tags[i] == 0 {
        i += 1;
    }
    i
}

/// Slab-backed sender tracker with amortized NACK accounting — the batched
/// hot-path twin of [`SentTracker`].
///
/// Packet numbers are dense and monotone (the connection assigns them from
/// a counter), so outstanding packets live in a `VecDeque` slab indexed by
/// `pn - base`: O(1) insert/lookup/remove with no per-packet tree nodes.
///
/// The map store's NACK walk touches **every** outstanding packet below
/// the ack horizon on **every** ack frame — O(outstanding) per ack. The
/// slab replaces the walk with arithmetic:
///
/// * `acks_seen` counts completed NACK walks (one per ack frame);
/// * a packet entering the below-horizon set records `entry = acks_seen`
///   at that instant, so its nack count is always `acks_seen - entry`
///   without being touched again;
/// * the `below` queue holds `(entry, pn)`, ascending in both fields
///   (packets enter in pn order, entries are monotone), so the
///   NACK-threshold loss condition `entry + threshold <= acks_seen` is
///   true for exactly a *prefix* — losses pop from the front in the same
///   pn-ascending order the map store emits, even when the adaptive
///   threshold grows between frames.
///
/// Per ack frame the slab does O(newly-acked + newly-below + newly-lost)
/// work. Time-threshold loss detection (off by default) takes a full-scan
/// path over `below` instead of the prefix pop, because for arbitrary
/// `sent_at` patterns time-lost packets need not be contiguous at the
/// front; the scan preserves pn order exactly.
///
/// Packets acked or RTO-abandoned while queued in `below` leave their
/// slab slot vacant; the queue skips such tombstones when it reaches them.
#[derive(Debug, Default)]
pub struct SentSlab {
    /// Packet number of `slots[0]`.
    base: u64,
    /// Outstanding packets at `pn - base`; `None` marks acked/lost holes.
    slots: VecDeque<Option<SentPacket>>,
    /// Per-slot tag in lockstep with `slots`: 0 = hole, 1 = live
    /// non-retransmittable, 2 = live retransmittable. Ack-block and
    /// horizon scans probe this one-byte array instead of dragging the
    /// wide slot storage through the cache. Kept as a flat vec plus a
    /// head offset (`tags[tags_head + i]` pairs with `slots[i]`) so the
    /// scans run on a plain slice; the dead prefix is trimmed once it
    /// outgrows the live tail.
    tags: Vec<u8>,
    /// Index of the tag paired with `slots[0]`.
    tags_head: usize,
    /// Occupied slot count.
    live: usize,
    bytes_in_flight: u64,
    largest_acked: Option<u64>,
    /// Packets declared lost, retained briefly to detect spuriousness.
    /// Sorted ascending by pn; small (bounded by the prune horizon), so a
    /// flat vec with one merge walk per ack frame beats a tree descent
    /// per block.
    lost_log: Vec<(u64, Time)>,
    /// Completed NACK walks (one per ack frame processed).
    acks_seen: u64,
    /// Watermark: packets with `pn < next_below` have been offered to
    /// `below` (or were sent below the horizon and enqueued by `on_sent`).
    next_below: u64,
    /// `(entry, pn)` for retransmittable packets below the ack horizon,
    /// ascending in both fields; `nacks(pn) = acks_seen - entry`.
    below: VecDeque<(u64, u64)>,
    /// Scratch for newly acked pns (reused across frames; no per-ack
    /// allocation on the hot path).
    scratch_acked: Vec<u64>,
    /// Scratch for pns about to be removed (losses, spurious hits).
    scratch_pns: Vec<u64>,
    /// Recycled `Chunk` vectors: acked packets donate their chunk
    /// storage back to the connection's next packet build.
    spare_chunks: Vec<Vec<Chunk>>,
}

impl SentSlab {
    #[inline]
    fn slot_index(&self, pn: u64) -> Option<usize> {
        pn.checked_sub(self.base)
            .map(|d| d as usize)
            .filter(|&d| d < self.slots.len())
    }

    /// Record a transmission. Packet numbers must be monotone (they are:
    /// the connection assigns them from a counter).
    pub fn on_sent(&mut self, pkt: SentPacket) {
        if pkt.retransmittable {
            self.bytes_in_flight += pkt.wire_bytes as u64;
        }
        if self.slots.is_empty() {
            debug_assert_eq!(self.live, 0);
            self.base = pkt.pn;
        }
        let next = self.base + self.slots.len() as u64;
        assert!(pkt.pn >= next, "packet number reused or out of order");
        // A packet sent below the current ack horizon (possible only for
        // adversarial acks claiming unseen pns) joins the NACK set now:
        // its first nack lands on the next walk, like the map store's.
        if pkt.retransmittable && pkt.pn < self.next_below {
            self.below.push_back((self.acks_seen, pkt.pn));
        }
        for _ in next..pkt.pn {
            self.slots.push_back(None);
            self.tags.push(0);
        }
        self.tags.push(if pkt.retransmittable { 2 } else { 1 });
        self.slots.push_back(Some(pkt));
        self.live += 1;
    }

    /// Live view of the tag array: `tags()[i]` pairs with `slots[i]`.
    #[inline]
    fn tags(&self) -> &[u8] {
        &self.tags[self.tags_head..]
    }

    /// Retransmittable bytes currently outstanding.
    pub fn bytes_in_flight(&self) -> u64 {
        self.bytes_in_flight
    }

    /// Whether any retransmittable packet is outstanding.
    pub fn has_retransmittable(&self) -> bool {
        self.bytes_in_flight > 0
    }

    /// Largest acked packet number.
    pub fn largest_acked(&self) -> Option<u64> {
        self.largest_acked
    }

    /// The newest outstanding retransmittable packet (for TLP).
    pub fn newest_retransmittable(&self) -> Option<&SentPacket> {
        let i = self.tags().iter().rposition(|&t| t == 2)?;
        self.slots[i].as_ref()
    }

    /// Declare up to `n` oldest retransmittable packets lost (for RTO).
    pub fn declare_oldest_lost(&mut self, n: usize) -> Vec<SentPacket> {
        let mut pns = mem::take(&mut self.scratch_pns);
        debug_assert!(pns.is_empty());
        for (i, &tag) in self.tags().iter().enumerate() {
            if pns.len() >= n {
                break;
            }
            if tag == 2 {
                pns.push(self.base + i as u64);
            }
        }
        let mut out = Vec::with_capacity(pns.len());
        for pn in pns.drain(..) {
            if let Some(pkt) = self.remove_in_flight(pn) {
                self.log_lost(pkt.pn, pkt.sent_at);
                out.push(pkt);
            }
        }
        self.scratch_pns = pns;
        out
    }

    /// Record a lost pn in the sorted log (same insert-or-replace
    /// semantics as the map store's `BTreeMap::insert`).
    fn log_lost(&mut self, pn: u64, sent_at: Time) {
        match self.lost_log.binary_search_by_key(&pn, |e| e.0) {
            Ok(i) => self.lost_log[i].1 = sent_at,
            Err(i) => self.lost_log.insert(i, (pn, sent_at)),
        }
    }

    fn remove_in_flight(&mut self, pn: u64) -> Option<SentPacket> {
        let i = self.slot_index(pn)?;
        let pkt = self.slots[i].take()?;
        self.tags[self.tags_head + i] = 0;
        self.live -= 1;
        if pkt.retransmittable {
            self.bytes_in_flight -= pkt.wire_bytes as u64;
        }
        // Compact fully-drained prefix so ack-block scans stay within the
        // outstanding window.
        while self.tags.get(self.tags_head) == Some(&0) {
            self.slots.pop_front();
            self.tags_head += 1;
            self.base += 1;
        }
        // Trim the dead tag prefix once it dominates the array.
        if self.tags_head >= 64 && self.tags_head * 2 >= self.tags.len() {
            self.tags.drain(..self.tags_head);
            self.tags_head = 0;
        }
        Some(pkt)
    }

    /// Process an ack frame. Semantics are pinned to
    /// [`SentTracker::on_ack_frame`] — same outcome fields, same loss
    /// order — with O(newly-acked + newly-below + newly-lost) work.
    pub fn on_ack_frame(
        &mut self,
        now: Time,
        largest: u64,
        ack_delay: Dur,
        blocks: &[AckBlock],
        nack_threshold: u32,
        time_threshold: Option<Dur>,
    ) -> AckOutcome {
        let _ = ack_delay; // rtt adjustment is done by the caller's estimator
        let mut out = AckOutcome::default();

        // Newly acked pns present in the slab, ascending.
        let mut acked = mem::take(&mut self.scratch_acked);
        debug_assert!(acked.is_empty());
        let window_end = self.base + self.slots.len() as u64;
        {
            // Ack blocks re-cover the receiver's whole history each time,
            // so most of the scanned window is already-acked tombstones;
            // skip those in word-sized runs.
            let tags = self.tags();
            for &(start, end) in blocks {
                let lo = start.max(self.base);
                let hi = end.saturating_add(1).min(window_end);
                if lo >= hi {
                    continue;
                }
                let mut i = (lo - self.base) as usize;
                let end_i = (hi - self.base) as usize;
                loop {
                    i = next_live_tag(tags, i, end_i);
                    if i >= end_i {
                        break;
                    }
                    acked.push(self.base + i as u64);
                    i += 1;
                }
            }
        }
        acked.sort_unstable();

        for &pn in &acked {
            let pkt = self.remove_in_flight(pn).expect("collected above");
            if pkt.retransmittable {
                out.newly_acked_bytes += pkt.wire_bytes as u64;
                out.acked_payload_bytes += pkt.chunks.iter().map(|c| c.len as u64).sum::<u64>();
                out.acked_new_data = true;
            }
            out.newest_acked_sent_at = Some(match out.newest_acked_sent_at {
                Some(t) if t > pkt.sent_at => t,
                _ => pkt.sent_at,
            });
            if pn == largest {
                out.rtt_sample = Some(now.saturating_since(pkt.sent_at));
            }
            if self.spare_chunks.len() < 8 && pkt.chunks.capacity() > 0 {
                let mut ch = pkt.chunks;
                ch.clear();
                self.spare_chunks.push(ch);
            }
        }
        acked.clear();
        self.scratch_acked = acked;

        // Spurious detection: acked pns we had declared lost. The log
        // ascends in pn and ack blocks are disjoint and sorted
        // (descending off the wire, ascending from tests), so one merge
        // walk over the log entries inside the blocks' overall span finds
        // each pn's only candidate block — entries below the span (old
        // losses the tracker has trimmed past) are never touched.
        if !(self.lost_log.is_empty() || blocks.is_empty()) {
            let first = blocks[0];
            let last = blocks[blocks.len() - 1];
            let span_lo = first.0.min(last.0);
            let span_hi = first.1.max(last.1);
            let lo_idx = self.lost_log.partition_point(|e| e.0 < span_lo);
            let hi_idx = self.lost_log.partition_point(|e| e.0 <= span_hi);
            if lo_idx < hi_idx {
                let descending = blocks.len() >= 2 && blocks[0].0 > blocks[1].0;
                let at = |j: usize| {
                    if descending {
                        blocks[blocks.len() - 1 - j]
                    } else {
                        blocks[j]
                    }
                };
                let mut hits = mem::take(&mut self.scratch_pns);
                debug_assert!(hits.is_empty());
                let mut j = 0usize;
                for &(pn, _) in &self.lost_log[lo_idx..hi_idx] {
                    while j < blocks.len() && at(j).1 < pn {
                        j += 1;
                    }
                    if j < blocks.len() && at(j).0 <= pn {
                        hits.push(pn);
                    }
                }
                for &pn in &hits {
                    if let Ok(i) = self.lost_log.binary_search_by_key(&pn, |e| e.0) {
                        self.lost_log.remove(i);
                        out.spurious += 1;
                    }
                }
                hits.clear();
                self.scratch_pns = hits;
            }
        }

        self.largest_acked = Some(self.largest_acked.map_or(largest, |l| l.max(largest)));
        let horizon = self.largest_acked.expect("just set");

        // Packets newly below the horizon join the NACK set with the
        // pre-walk `acks_seen`, so this walk counts as their first nack.
        let lo = self.next_below.max(self.base);
        let hi = horizon.min(window_end);
        for pn in lo..hi {
            if self.tags[self.tags_head + (pn - self.base) as usize] == 2 {
                self.below.push_back((self.acks_seen, pn));
            }
        }
        self.next_below = self.next_below.max(horizon);
        self.acks_seen += 1;

        let thr = nack_threshold as u64;
        if let Some(th) = time_threshold {
            // Exact slow path: time-lost packets need not be a prefix of
            // `below` for arbitrary sent_at patterns, so scan it all
            // (matching the map store's full walk cost in this mode).
            let mut lost_pns = mem::take(&mut self.scratch_pns);
            debug_assert!(lost_pns.is_empty());
            {
                let base = self.base;
                let slots = &self.slots;
                let acks_seen = self.acks_seen;
                self.below.retain(|&(entry, pn)| {
                    let live = pn
                        .checked_sub(base)
                        .map(|d| d as usize)
                        .filter(|&d| d < slots.len())
                        .and_then(|d| slots[d].as_ref());
                    let Some(pkt) = live else {
                        return false; // tombstone: acked or RTO-abandoned
                    };
                    let nack_lost = entry + thr <= acks_seen;
                    let time_lost = now.saturating_since(pkt.sent_at) > th;
                    if nack_lost || time_lost {
                        lost_pns.push(pn);
                        false
                    } else {
                        true
                    }
                });
            }
            for pn in lost_pns.drain(..) {
                let pkt = self.remove_in_flight(pn).expect("live above");
                self.log_lost(pkt.pn, pkt.sent_at);
                out.lost.push(pkt);
            }
            self.scratch_pns = lost_pns;
        } else {
            // Prefix pop: entries ascend, so once the front is too recent
            // nothing behind it can qualify.
            while let Some(&(entry, pn)) = self.below.front() {
                if entry + thr > self.acks_seen {
                    break;
                }
                self.below.pop_front();
                if let Some(pkt) = self.remove_in_flight(pn) {
                    self.log_lost(pkt.pn, pkt.sent_at);
                    out.lost.push(pkt);
                }
            }
        }

        self.prune_lost_log();
        out
    }

    fn prune_lost_log(&mut self) {
        // Same retained set as the map store's `split_off(&cutoff)`, but
        // only touches the vec when an entry actually falls below the
        // cutoff.
        if let Some(horizon) = self.largest_acked {
            let cutoff = horizon.saturating_sub(10_000);
            let cut = self.lost_log.partition_point(|&(pn, _)| pn < cutoff);
            if cut > 0 {
                self.lost_log.drain(..cut);
            }
        }
    }

    /// Outstanding packet count (diagnostics).
    pub fn outstanding(&self) -> usize {
        self.live
    }
}

/// Either sender-side store behind one interface.
///
/// Selected per connection from `LONGLOOK_BATCH`: the slab on the batched
/// hot path, the map store on the per-event reference path. The two are
/// pinned semantically identical by the shared unit-test contract below
/// (every test runs against both) and by the slab-equivalence proptest.
#[derive(Debug)]
pub enum SentStore {
    /// Reference `BTreeMap` tracker.
    Map(SentTracker),
    /// Slab tracker with amortized NACK accounting.
    Slab(SentSlab),
}

impl SentStore {
    /// Pick the store for the current `LONGLOOK_BATCH` mode.
    pub fn from_env() -> SentStore {
        match BatchMode::from_env() {
            BatchMode::On => SentStore::Slab(SentSlab::default()),
            BatchMode::Off => SentStore::Map(SentTracker::default()),
        }
    }

    /// Record a transmission.
    pub fn on_sent(&mut self, pkt: SentPacket) {
        match self {
            SentStore::Map(s) => s.on_sent(pkt),
            SentStore::Slab(s) => s.on_sent(pkt),
        }
    }

    /// Retransmittable bytes currently outstanding.
    pub fn bytes_in_flight(&self) -> u64 {
        match self {
            SentStore::Map(s) => s.bytes_in_flight(),
            SentStore::Slab(s) => s.bytes_in_flight(),
        }
    }

    /// Whether any retransmittable packet is outstanding.
    pub fn has_retransmittable(&self) -> bool {
        match self {
            SentStore::Map(s) => s.has_retransmittable(),
            SentStore::Slab(s) => s.has_retransmittable(),
        }
    }

    /// Largest acked packet number.
    pub fn largest_acked(&self) -> Option<u64> {
        match self {
            SentStore::Map(s) => s.largest_acked(),
            SentStore::Slab(s) => s.largest_acked(),
        }
    }

    /// The newest outstanding retransmittable packet (for TLP).
    pub fn newest_retransmittable(&self) -> Option<&SentPacket> {
        match self {
            SentStore::Map(s) => s.newest_retransmittable(),
            SentStore::Slab(s) => s.newest_retransmittable(),
        }
    }

    /// Declare up to `n` oldest retransmittable packets lost (for RTO).
    pub fn declare_oldest_lost(&mut self, n: usize) -> Vec<SentPacket> {
        match self {
            SentStore::Map(s) => s.declare_oldest_lost(n),
            SentStore::Slab(s) => s.declare_oldest_lost(n),
        }
    }

    /// Process an ack frame (see [`SentTracker::on_ack_frame`]).
    pub fn on_ack_frame(
        &mut self,
        now: Time,
        largest: u64,
        ack_delay: Dur,
        blocks: &[AckBlock],
        nack_threshold: u32,
        time_threshold: Option<Dur>,
    ) -> AckOutcome {
        match self {
            SentStore::Map(s) => s.on_ack_frame(
                now,
                largest,
                ack_delay,
                blocks,
                nack_threshold,
                time_threshold,
            ),
            SentStore::Slab(s) => s.on_ack_frame(
                now,
                largest,
                ack_delay,
                blocks,
                nack_threshold,
                time_threshold,
            ),
        }
    }

    /// Outstanding packet count (diagnostics).
    pub fn outstanding(&self) -> usize {
        match self {
            SentStore::Map(s) => s.outstanding(),
            SentStore::Slab(s) => s.outstanding(),
        }
    }

    /// An empty `Chunk` vector, recycled from an acked packet when the
    /// slab has one spare (the map reference path always allocates).
    pub fn take_spare_chunks(&mut self) -> Vec<Chunk> {
        match self {
            SentStore::Map(_) => Vec::new(),
            SentStore::Slab(s) => s.spare_chunks.pop().unwrap_or_default(),
        }
    }

    /// Return unused chunk storage taken with
    /// [`SentStore::take_spare_chunks`].
    pub fn give_spare_chunks(&mut self, chunks: Vec<Chunk>) {
        debug_assert!(chunks.is_empty());
        if let SentStore::Slab(s) = self {
            if s.spare_chunks.len() < 8 && chunks.capacity() > 0 {
                s.spare_chunks.push(chunks);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every contract below runs against both stores: the map tracker is
    /// the reference, the slab must be indistinguishable.
    fn stores() -> [SentStore; 2] {
        [
            SentStore::Map(SentTracker::default()),
            SentStore::Slab(SentSlab::default()),
        ]
    }

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    fn data_pkt(pn: u64, ms: u64) -> SentPacket {
        SentPacket {
            pn,
            sent_at: t(ms),
            wire_bytes: 1400,
            chunks: vec![Chunk {
                id: 1,
                offset: pn * 1350,
                len: 1350,
                fin: false,
            }],
            handshake: None,
            wu_streams: Vec::new(),
            retransmittable: true,
            nacks: 0,
        }
    }

    fn ack_pkt(pn: u64, ms: u64) -> SentPacket {
        SentPacket {
            pn,
            sent_at: t(ms),
            wire_bytes: 80,
            chunks: vec![],
            handshake: None,
            wu_streams: Vec::new(),
            retransmittable: false,
            nacks: 0,
        }
    }

    #[test]
    fn in_flight_accounting() {
        for mut s in stores() {
            s.on_sent(data_pkt(0, 0));
            s.on_sent(data_pkt(1, 1));
            s.on_sent(ack_pkt(2, 2));
            assert_eq!(s.bytes_in_flight(), 2800);
            let out = s.on_ack_frame(t(40), 1, Dur::ZERO, &[(0, 1)], 3, None);
            assert_eq!(out.newly_acked_bytes, 2800);
            assert_eq!(s.bytes_in_flight(), 0);
            assert!(out.acked_new_data);
            assert_eq!(out.acked_payload_bytes, 2700);
        }
    }

    #[test]
    fn rtt_sample_from_largest() {
        for mut s in stores() {
            s.on_sent(data_pkt(0, 0));
            s.on_sent(data_pkt(1, 10));
            let out = s.on_ack_frame(t(50), 1, Dur::ZERO, &[(0, 1)], 3, None);
            assert_eq!(out.rtt_sample, Some(Dur::from_millis(40)));
            assert_eq!(out.newest_acked_sent_at, Some(t(10)));
        }
    }

    #[test]
    fn no_rtt_sample_when_largest_already_acked() {
        for mut s in stores() {
            s.on_sent(data_pkt(0, 0));
            s.on_sent(data_pkt(1, 1));
            s.on_ack_frame(t(40), 1, Dur::ZERO, &[(1, 1)], 3, None);
            // Second ack repeats largest=1 but only newly covers pn 0.
            let out = s.on_ack_frame(t(45), 1, Dur::ZERO, &[(0, 1)], 3, None);
            assert_eq!(out.rtt_sample, None);
            assert_eq!(out.newly_acked_bytes, 1400);
        }
    }

    #[test]
    fn nack_threshold_declares_loss() {
        for mut s in stores() {
            for pn in 0..5 {
                s.on_sent(data_pkt(pn, pn));
            }
            // pn 0 missing; acks covering later packets nack it.
            let o1 = s.on_ack_frame(t(40), 1, Dur::ZERO, &[(1, 1)], 3, None);
            assert!(o1.lost.is_empty());
            let o2 = s.on_ack_frame(t(41), 2, Dur::ZERO, &[(1, 2)], 3, None);
            assert!(o2.lost.is_empty());
            let o3 = s.on_ack_frame(t(42), 3, Dur::ZERO, &[(1, 3)], 3, None);
            assert_eq!(o3.lost.len(), 1);
            assert_eq!(o3.lost[0].pn, 0);
            // Its bytes left the pipe.
            assert_eq!(s.bytes_in_flight(), 1400, "only pn 4 remains");
        }
    }

    #[test]
    fn higher_threshold_tolerates_deeper_reordering() {
        for mut s in stores() {
            for pn in 0..12 {
                s.on_sent(data_pkt(pn, pn));
            }
            // 5 acks skip pn 0.
            for k in 1..=5u64 {
                let out = s.on_ack_frame(t(40 + k), k, Dur::ZERO, &[(1, k)], 10, None);
                assert!(out.lost.is_empty(), "threshold 10 not yet reached");
            }
        }
    }

    #[test]
    fn spurious_detected_when_lost_packet_is_acked() {
        for mut s in stores() {
            for pn in 0..5 {
                s.on_sent(data_pkt(pn, pn));
            }
            for k in 1..=3u64 {
                s.on_ack_frame(t(40 + k), k, Dur::ZERO, &[(1, k)], 3, None);
            }
            // pn 0 was declared lost; now the "reordered" original arrives.
            let out = s.on_ack_frame(t(45), 4, Dur::ZERO, &[(0, 4)], 3, None);
            assert_eq!(out.spurious, 1);
        }
    }

    #[test]
    fn time_based_loss() {
        for mut s in stores() {
            s.on_sent(data_pkt(0, 0));
            s.on_sent(data_pkt(1, 100));
            // One ack above pn 0, far in the future: time threshold trips
            // even though only one nack accumulated.
            let out = s.on_ack_frame(
                t(500),
                1,
                Dur::ZERO,
                &[(1, 1)],
                100,
                Some(Dur::from_millis(200)),
            );
            assert_eq!(out.lost.len(), 1);
            assert_eq!(out.lost[0].pn, 0);
        }
    }

    #[test]
    fn rto_declares_oldest_lost() {
        for mut s in stores() {
            for pn in 0..4 {
                s.on_sent(data_pkt(pn, pn));
            }
            let lost = s.declare_oldest_lost(2);
            assert_eq!(lost.len(), 2);
            assert_eq!(lost[0].pn, 0);
            assert_eq!(lost[1].pn, 1);
            assert_eq!(s.bytes_in_flight(), 2800);
            // Acking one of them later counts as spurious.
            let out = s.on_ack_frame(t(100), 3, Dur::ZERO, &[(0, 0), (3, 3)], 3, None);
            assert_eq!(out.spurious, 1);
        }
    }

    #[test]
    fn newest_retransmittable_for_tlp() {
        for mut s in stores() {
            s.on_sent(data_pkt(0, 0));
            s.on_sent(data_pkt(1, 1));
            s.on_sent(ack_pkt(2, 2));
            assert_eq!(s.newest_retransmittable().unwrap().pn, 1);
        }
    }

    #[test]
    fn acked_packets_stop_being_nacked() {
        for mut s in stores() {
            for pn in 0..3 {
                s.on_sent(data_pkt(pn, pn));
            }
            s.on_ack_frame(t(40), 2, Dur::ZERO, &[(0, 0), (2, 2)], 3, None);
            // pn 1 has 1 nack; ack it, then no more loss machinery applies.
            let out = s.on_ack_frame(t(41), 2, Dur::ZERO, &[(0, 2)], 3, None);
            assert!(out.lost.is_empty());
            assert_eq!(s.outstanding(), 0);
            assert!(!s.has_retransmittable());
        }
    }

    #[test]
    fn slab_survives_abandon_then_late_ack_with_adaptive_threshold() {
        // The PR-5 livelock shape: repeated RTO abandons the whole flight
        // (`declare_oldest_lost(usize::MAX)`), retransmissions go out with
        // fresh pns, then a late ack covers abandoned pns (spurious) while
        // an adaptive caller raises the nack threshold between frames.
        for mut s in stores() {
            for pn in 0..6 {
                s.on_sent(data_pkt(pn, pn));
            }
            let abandoned = s.declare_oldest_lost(usize::MAX);
            assert_eq!(abandoned.len(), 6);
            assert_eq!(s.bytes_in_flight(), 0);
            for pn in 6..10 {
                s.on_sent(data_pkt(pn, 100 + pn));
            }
            // Late ack for abandoned pns 0..=2: spurious, not newly acked.
            let o1 = s.on_ack_frame(t(200), 7, Dur::ZERO, &[(0, 2), (7, 7)], 3, None);
            assert_eq!(o1.spurious, 3);
            assert_eq!(o1.newly_acked_bytes, 1400);
            // Threshold grows (adaptive caller) mid-stream; pn 6 drops out
            // only after enough further acks.
            let o2 = s.on_ack_frame(t(201), 8, Dur::ZERO, &[(8, 8)], 6, None);
            assert!(o2.lost.is_empty());
            let o3 = s.on_ack_frame(t(202), 9, Dur::ZERO, &[(9, 9)], 3, None);
            assert_eq!(o3.lost.len(), 1, "threshold back down: pn 6 lost");
            assert_eq!(o3.lost[0].pn, 6);
        }
    }

    #[test]
    fn slab_handles_retransmission_cycle_like_map() {
        // Loss -> retransmit under new pn -> ack of the retransmission;
        // the store must keep in-flight accounting exact throughout.
        for mut s in stores() {
            for pn in 0..4 {
                s.on_sent(data_pkt(pn, pn));
            }
            for k in 1..=3u64 {
                s.on_ack_frame(t(40 + k), k, Dur::ZERO, &[(k, k)], 3, None);
            }
            // pn 0 declared lost on the third nack; retransmit as pn 4.
            assert_eq!(s.outstanding(), 0);
            s.on_sent(data_pkt(4, 50));
            assert_eq!(s.bytes_in_flight(), 1400);
            let out = s.on_ack_frame(t(90), 4, Dur::ZERO, &[(4, 4)], 3, None);
            assert_eq!(out.newly_acked_bytes, 1400);
            assert!(out.rtt_sample.is_some());
            assert_eq!(s.bytes_in_flight(), 0);
        }
    }
}
