//! Sender-side packet tracking and loss detection.
//!
//! This is where QUIC's defining sender behaviors live:
//!
//! * **No retransmission ambiguity** — packet numbers are monotonic, every
//!   ack maps to exactly one transmission, so every ack can produce an RTT
//!   sample (TCP's Karn restriction does not apply);
//! * **NACK-threshold fast retransmit** — a packet is declared lost after
//!   being "nacked" by `nack_threshold` acks covering later packets
//!   (default 3). The paper shows this fixed threshold misclassifies
//!   reordered packets as lost (Sec 5.2, Fig 10);
//! * **spurious-retransmission detection** — an ack arriving for a packet
//!   already declared lost proves the retransmission spurious, feeding
//!   both statistics and the optional adaptive threshold.

use crate::streams::Chunk;
use crate::wire::{AckBlock, HandshakeKind};
use longlook_sim::time::{Dur, Time};
use std::collections::BTreeMap;

/// Bookkeeping for one transmitted packet.
#[derive(Debug, Clone)]
pub struct SentPacket {
    /// Packet number.
    pub pn: u64,
    /// Transmission time.
    pub sent_at: Time,
    /// Full wire size (for in-flight accounting).
    pub wire_bytes: u32,
    /// Stream chunks carried (requeued on loss).
    pub chunks: Vec<Chunk>,
    /// Handshake message carried (retransmitted on loss).
    pub handshake: Option<HandshakeKind>,
    /// Streams whose window updates rode in this packet (0 = connection);
    /// on loss the *current* windows are re-announced.
    pub wu_streams: Vec<u32>,
    /// Whether the packet counts toward bytes in flight and needs acking.
    pub retransmittable: bool,
    /// Times this packet has been nacked.
    pub nacks: u32,
}

/// What an incoming ack frame did.
#[derive(Debug, Default)]
pub struct AckOutcome {
    /// Retransmittable wire bytes newly acknowledged.
    pub newly_acked_bytes: u64,
    /// Stream payload bytes newly acknowledged.
    pub acked_payload_bytes: u64,
    /// Send time of the newest packet this ack covers (for CC epochs).
    pub newest_acked_sent_at: Option<Time>,
    /// RTT measurement from the largest acked packet, if it was newly
    /// acked by this frame.
    pub rtt_sample: Option<Dur>,
    /// Packets declared lost by this ack (NACK threshold / time).
    pub lost: Vec<SentPacket>,
    /// Previously-declared-lost packets now proven delivered.
    pub spurious: u32,
    /// Whether any new data was acked (resets TLP/RTO backoff).
    pub acked_new_data: bool,
}

/// Sender-side tracker.
#[derive(Debug, Default)]
pub struct SentTracker {
    packets: BTreeMap<u64, SentPacket>,
    bytes_in_flight: u64,
    largest_acked: Option<u64>,
    /// Packets declared lost, retained briefly to detect spuriousness.
    lost_log: BTreeMap<u64, Time>,
}

impl SentTracker {
    /// Record a transmission.
    pub fn on_sent(&mut self, pkt: SentPacket) {
        if pkt.retransmittable {
            self.bytes_in_flight += pkt.wire_bytes as u64;
        }
        let prev = self.packets.insert(pkt.pn, pkt);
        debug_assert!(prev.is_none(), "packet number reused");
    }

    /// Retransmittable bytes currently outstanding.
    pub fn bytes_in_flight(&self) -> u64 {
        self.bytes_in_flight
    }

    /// Whether any retransmittable packet is outstanding.
    pub fn has_retransmittable(&self) -> bool {
        self.bytes_in_flight > 0
    }

    /// Largest acked packet number.
    pub fn largest_acked(&self) -> Option<u64> {
        self.largest_acked
    }

    /// Clone of the newest outstanding retransmittable packet (for TLP).
    pub fn newest_retransmittable(&self) -> Option<&SentPacket> {
        self.packets.values().rev().find(|p| p.retransmittable)
    }

    /// Declare up to `n` oldest retransmittable packets lost (for RTO);
    /// returns them with in-flight accounting updated and spurious
    /// tracking armed.
    pub fn declare_oldest_lost(&mut self, n: usize) -> Vec<SentPacket> {
        let pns: Vec<u64> = self
            .packets
            .values()
            .filter(|p| p.retransmittable)
            .take(n)
            .map(|p| p.pn)
            .collect();
        let mut out = Vec::with_capacity(pns.len());
        for pn in pns {
            if let Some(pkt) = self.remove_in_flight(pn) {
                self.lost_log.insert(pkt.pn, pkt.sent_at);
                out.push(pkt);
            }
        }
        out
    }

    fn remove_in_flight(&mut self, pn: u64) -> Option<SentPacket> {
        let pkt = self.packets.remove(&pn)?;
        if pkt.retransmittable {
            self.bytes_in_flight -= pkt.wire_bytes as u64;
        }
        Some(pkt)
    }

    /// Process an ack frame. `time_threshold` (if set) additionally marks
    /// packets lost once they are older than that relative to `now` and
    /// below the largest acked pn.
    pub fn on_ack_frame(
        &mut self,
        now: Time,
        largest: u64,
        ack_delay: Dur,
        blocks: &[AckBlock],
        nack_threshold: u32,
        time_threshold: Option<Dur>,
    ) -> AckOutcome {
        let _ = ack_delay; // rtt adjustment is done by the caller's estimator
        let mut out = AckOutcome::default();

        // Collect newly acked pns present in our map.
        let mut acked: Vec<u64> = Vec::new();
        for &(start, end) in blocks {
            let in_range: Vec<u64> = self.packets.range(start..=end).map(|(&pn, _)| pn).collect();
            acked.extend(in_range);
        }
        acked.sort_unstable();

        for pn in acked {
            let pkt = self.remove_in_flight(pn).expect("collected above");
            if pkt.retransmittable {
                out.newly_acked_bytes += pkt.wire_bytes as u64;
                out.acked_payload_bytes += pkt.chunks.iter().map(|c| c.len as u64).sum::<u64>();
                out.acked_new_data = true;
            }
            out.newest_acked_sent_at = Some(match out.newest_acked_sent_at {
                Some(t) if t > pkt.sent_at => t,
                _ => pkt.sent_at,
            });
            if pn == largest {
                out.rtt_sample = Some(now.saturating_since(pkt.sent_at));
            }
        }

        // Spurious detection: acked pns we had declared lost.
        for &(start, end) in blocks {
            let hits: Vec<u64> = self
                .lost_log
                .range(start..=end)
                .map(|(&pn, _)| pn)
                .collect();
            for pn in hits {
                self.lost_log.remove(&pn);
                out.spurious += 1;
            }
        }

        self.largest_acked = Some(self.largest_acked.map_or(largest, |l| l.max(largest)));
        let horizon = self.largest_acked.expect("just set");

        // NACK counting: every unacked packet below the largest acked gets
        // one nack per ack frame processed.
        let mut lost_pns: Vec<u64> = Vec::new();
        for (&pn, pkt) in self.packets.range_mut(..horizon) {
            if !pkt.retransmittable {
                continue;
            }
            pkt.nacks += 1;
            let nack_lost = pkt.nacks >= nack_threshold;
            let time_lost = time_threshold.is_some_and(|th| now.saturating_since(pkt.sent_at) > th);
            if nack_lost || time_lost {
                lost_pns.push(pn);
            }
        }
        for pn in lost_pns {
            let pkt = self.remove_in_flight(pn).expect("present");
            self.lost_log.insert(pkt.pn, pkt.sent_at);
            out.lost.push(pkt);
        }

        self.prune_lost_log();
        out
    }

    fn prune_lost_log(&mut self) {
        if let Some(horizon) = self.largest_acked {
            let cutoff = horizon.saturating_sub(10_000);
            self.lost_log = self.lost_log.split_off(&cutoff);
        }
    }

    /// Outstanding packet count (diagnostics).
    pub fn outstanding(&self) -> usize {
        self.packets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    fn data_pkt(pn: u64, ms: u64) -> SentPacket {
        SentPacket {
            pn,
            sent_at: t(ms),
            wire_bytes: 1400,
            chunks: vec![Chunk {
                id: 1,
                offset: pn * 1350,
                len: 1350,
                fin: false,
            }],
            handshake: None,
            wu_streams: Vec::new(),
            retransmittable: true,
            nacks: 0,
        }
    }

    fn ack_pkt(pn: u64, ms: u64) -> SentPacket {
        SentPacket {
            pn,
            sent_at: t(ms),
            wire_bytes: 80,
            chunks: vec![],
            handshake: None,
            wu_streams: Vec::new(),
            retransmittable: false,
            nacks: 0,
        }
    }

    #[test]
    fn in_flight_accounting() {
        let mut s = SentTracker::default();
        s.on_sent(data_pkt(0, 0));
        s.on_sent(data_pkt(1, 1));
        s.on_sent(ack_pkt(2, 2));
        assert_eq!(s.bytes_in_flight(), 2800);
        let out = s.on_ack_frame(t(40), 1, Dur::ZERO, &[(0, 1)], 3, None);
        assert_eq!(out.newly_acked_bytes, 2800);
        assert_eq!(s.bytes_in_flight(), 0);
        assert!(out.acked_new_data);
        assert_eq!(out.acked_payload_bytes, 2700);
    }

    #[test]
    fn rtt_sample_from_largest() {
        let mut s = SentTracker::default();
        s.on_sent(data_pkt(0, 0));
        s.on_sent(data_pkt(1, 10));
        let out = s.on_ack_frame(t(50), 1, Dur::ZERO, &[(0, 1)], 3, None);
        assert_eq!(out.rtt_sample, Some(Dur::from_millis(40)));
        assert_eq!(out.newest_acked_sent_at, Some(t(10)));
    }

    #[test]
    fn no_rtt_sample_when_largest_already_acked() {
        let mut s = SentTracker::default();
        s.on_sent(data_pkt(0, 0));
        s.on_sent(data_pkt(1, 1));
        s.on_ack_frame(t(40), 1, Dur::ZERO, &[(1, 1)], 3, None);
        // Second ack repeats largest=1 but only newly covers pn 0.
        let out = s.on_ack_frame(t(45), 1, Dur::ZERO, &[(0, 1)], 3, None);
        assert_eq!(out.rtt_sample, None);
        assert_eq!(out.newly_acked_bytes, 1400);
    }

    #[test]
    fn nack_threshold_declares_loss() {
        let mut s = SentTracker::default();
        for pn in 0..5 {
            s.on_sent(data_pkt(pn, pn));
        }
        // pn 0 missing; acks covering later packets nack it.
        let o1 = s.on_ack_frame(t(40), 1, Dur::ZERO, &[(1, 1)], 3, None);
        assert!(o1.lost.is_empty());
        let o2 = s.on_ack_frame(t(41), 2, Dur::ZERO, &[(1, 2)], 3, None);
        assert!(o2.lost.is_empty());
        let o3 = s.on_ack_frame(t(42), 3, Dur::ZERO, &[(1, 3)], 3, None);
        assert_eq!(o3.lost.len(), 1);
        assert_eq!(o3.lost[0].pn, 0);
        // Its bytes left the pipe.
        assert_eq!(s.bytes_in_flight(), 1400, "only pn 4 remains");
    }

    #[test]
    fn higher_threshold_tolerates_deeper_reordering() {
        let mut s = SentTracker::default();
        for pn in 0..12 {
            s.on_sent(data_pkt(pn, pn));
        }
        // 5 acks skip pn 0.
        for k in 1..=5u64 {
            let out = s.on_ack_frame(t(40 + k), k, Dur::ZERO, &[(1, k)], 10, None);
            assert!(out.lost.is_empty(), "threshold 10 not yet reached");
        }
    }

    #[test]
    fn spurious_detected_when_lost_packet_is_acked() {
        let mut s = SentTracker::default();
        for pn in 0..5 {
            s.on_sent(data_pkt(pn, pn));
        }
        for k in 1..=3u64 {
            s.on_ack_frame(t(40 + k), k, Dur::ZERO, &[(1, k)], 3, None);
        }
        // pn 0 was declared lost; now the "reordered" original arrives.
        let out = s.on_ack_frame(t(45), 4, Dur::ZERO, &[(0, 4)], 3, None);
        assert_eq!(out.spurious, 1);
    }

    #[test]
    fn time_based_loss() {
        let mut s = SentTracker::default();
        s.on_sent(data_pkt(0, 0));
        s.on_sent(data_pkt(1, 100));
        // One ack above pn 0, far in the future: time threshold trips even
        // though only one nack accumulated.
        let out = s.on_ack_frame(
            t(500),
            1,
            Dur::ZERO,
            &[(1, 1)],
            100,
            Some(Dur::from_millis(200)),
        );
        assert_eq!(out.lost.len(), 1);
        assert_eq!(out.lost[0].pn, 0);
    }

    #[test]
    fn rto_declares_oldest_lost() {
        let mut s = SentTracker::default();
        for pn in 0..4 {
            s.on_sent(data_pkt(pn, pn));
        }
        let lost = s.declare_oldest_lost(2);
        assert_eq!(lost.len(), 2);
        assert_eq!(lost[0].pn, 0);
        assert_eq!(lost[1].pn, 1);
        assert_eq!(s.bytes_in_flight(), 2800);
        // Acking one of them later counts as spurious.
        let out = s.on_ack_frame(t(100), 3, Dur::ZERO, &[(0, 0), (3, 3)], 3, None);
        assert_eq!(out.spurious, 1);
    }

    #[test]
    fn newest_retransmittable_for_tlp() {
        let mut s = SentTracker::default();
        s.on_sent(data_pkt(0, 0));
        s.on_sent(data_pkt(1, 1));
        s.on_sent(ack_pkt(2, 2));
        assert_eq!(s.newest_retransmittable().unwrap().pn, 1);
    }

    #[test]
    fn acked_packets_stop_being_nacked() {
        let mut s = SentTracker::default();
        for pn in 0..3 {
            s.on_sent(data_pkt(pn, pn));
        }
        s.on_ack_frame(t(40), 2, Dur::ZERO, &[(0, 0), (2, 2)], 3, None);
        // pn 1 has 1 nack; ack it now, then no more loss machinery applies.
        let out = s.on_ack_frame(t(41), 2, Dur::ZERO, &[(0, 2)], 3, None);
        assert!(out.lost.is_empty());
        assert_eq!(s.outstanding(), 0);
        assert!(!s.has_retransmittable());
    }
}
