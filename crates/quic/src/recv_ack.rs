//! Receiver-side ack state: which packet numbers arrived, and when to ack.
//!
//! gQUIC-style ack decimation: an ack is triggered after every
//! `ack_every` retransmittable packets or when the delayed-ack timer
//! fires. Acks carry the precise delay between receiving the largest
//! packet and sending the ack — the timing precision the paper credits
//! for QUIC's better bandwidth estimation.

use crate::wire::AckBlock;
use longlook_sim::time::{Dur, Time};

/// Cap on ack ranges carried per frame (oldest are dropped).
const MAX_BLOCKS: usize = 32;

/// Tracks received packet numbers and ack scheduling.
#[derive(Debug, Default)]
pub struct AckTracker {
    /// Received pn ranges, ascending, disjoint, inclusive.
    ranges: Vec<(u64, u64)>,
    largest: Option<u64>,
    largest_recv_time: Time,
    /// Retransmittable packets since the last ack went out.
    unacked_count: u32,
    /// Delayed-ack deadline, if armed.
    ack_deadline: Option<Time>,
}

impl AckTracker {
    /// Record an arriving packet. `retransmittable` = contains frames
    /// needing acknowledgement (stream/handshake/window-update data, not
    /// bare acks). Returns `true` if this pn was seen before (duplicate).
    pub fn on_packet(
        &mut self,
        pn: u64,
        now: Time,
        retransmittable: bool,
        ack_every: u32,
        delayed_ack: Dur,
    ) -> bool {
        let dup = self.insert(pn);
        if self.largest.is_none_or(|l| pn > l) {
            self.largest = Some(pn);
            self.largest_recv_time = now;
        }
        if retransmittable && !dup {
            self.unacked_count += 1;
            if self.unacked_count < ack_every {
                // Arm the delayed-ack timer.
                if self.ack_deadline.is_none() {
                    self.ack_deadline = Some(now + delayed_ack);
                }
            }
        }
        dup
    }

    fn insert(&mut self, pn: u64) -> bool {
        // In-order fast path: extending or appending past the newest range
        // is the overwhelming bulk-transfer case; the positional walk
        // below would scan every range just to reach the end. Ranges are
        // maximal (gaps of at least 2 between them), so extending the last
        // range can never trigger a merge — the outcomes are exactly what
        // the walk would produce.
        if let Some(&mut (_, ref mut e)) = self.ranges.last_mut() {
            if pn == *e + 1 {
                *e = pn;
                return false;
            }
            if pn > *e {
                self.ranges.push((pn, pn));
                self.trim();
                return false;
            }
        }
        // Find position; ranges is small (<= MAX_BLOCKS).
        for i in 0..self.ranges.len() {
            let (s, e) = self.ranges[i];
            if pn >= s && pn <= e {
                return true; // duplicate
            }
            if pn + 1 == s {
                self.ranges[i].0 = pn;
                // Possibly merge with the previous range.
                if i > 0 && self.ranges[i - 1].1 + 1 == pn {
                    self.ranges[i - 1].1 = self.ranges[i].1;
                    self.ranges.remove(i);
                }
                return false;
            }
            if pn == e + 1 {
                self.ranges[i].1 = pn;
                if i + 1 < self.ranges.len() && self.ranges[i + 1].0 == pn + 1 {
                    self.ranges[i].1 = self.ranges[i + 1].1;
                    self.ranges.remove(i + 1);
                }
                return false;
            }
            if pn < s {
                self.ranges.insert(i, (pn, pn));
                self.trim();
                return false;
            }
        }
        self.ranges.push((pn, pn));
        self.trim();
        false
    }

    fn trim(&mut self) {
        while self.ranges.len() > MAX_BLOCKS {
            self.ranges.remove(0); // drop the oldest (smallest) range
        }
    }

    /// Whether an ack should be sent right now.
    pub fn ack_due(&self, now: Time, ack_every: u32) -> bool {
        if self.unacked_count == 0 {
            return false;
        }
        self.unacked_count >= ack_every || self.ack_deadline.is_some_and(|d| now >= d)
    }

    /// Delayed-ack deadline for the wakeup calculation.
    pub fn deadline(&self) -> Option<Time> {
        if self.unacked_count > 0 {
            self.ack_deadline
        } else {
            None
        }
    }

    /// Build the ack frame contents and reset the decimation counter.
    /// Returns `(largest, ack_delay, blocks-descending)`, or `None` if
    /// nothing has been received yet.
    pub fn build_ack(&mut self, now: Time) -> Option<(u64, Dur, Vec<AckBlock>)> {
        let largest = self.largest?;
        let delay = now.saturating_since(self.largest_recv_time);
        let mut blocks: Vec<AckBlock> = self.ranges.clone();
        blocks.reverse(); // descending, largest first
        self.unacked_count = 0;
        self.ack_deadline = None;
        Some((largest, delay, blocks))
    }

    /// Largest packet number received.
    pub fn largest(&self) -> Option<u64> {
        self.largest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EVERY: u32 = 2;
    const DELAY: Dur = Dur::from_millis(25);

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    fn on(a: &mut AckTracker, pn: u64, ms: u64) -> bool {
        a.on_packet(pn, t(ms), true, EVERY, DELAY)
    }

    #[test]
    fn ack_after_every_second_packet() {
        let mut a = AckTracker::default();
        on(&mut a, 0, 0);
        assert!(!a.ack_due(t(0), EVERY));
        on(&mut a, 1, 1);
        assert!(a.ack_due(t(1), EVERY));
        let (largest, _, blocks) = a.build_ack(t(1)).unwrap();
        assert_eq!(largest, 1);
        assert_eq!(blocks, vec![(0, 1)]);
        assert!(!a.ack_due(t(1), EVERY), "counter reset");
    }

    #[test]
    fn delayed_ack_timer_fires() {
        let mut a = AckTracker::default();
        on(&mut a, 0, 0);
        assert!(!a.ack_due(t(10), EVERY));
        assert_eq!(a.deadline(), Some(t(25)));
        assert!(a.ack_due(t(25), EVERY));
    }

    #[test]
    fn ack_delay_measures_since_largest() {
        let mut a = AckTracker::default();
        on(&mut a, 0, 0);
        on(&mut a, 1, 10);
        let (_, delay, _) = a.build_ack(t(13)).unwrap();
        assert_eq!(delay, Dur::from_millis(3));
    }

    #[test]
    fn gaps_produce_multiple_blocks() {
        let mut a = AckTracker::default();
        on(&mut a, 0, 0);
        on(&mut a, 1, 1);
        on(&mut a, 5, 2);
        on(&mut a, 6, 3);
        on(&mut a, 9, 4);
        let (largest, _, blocks) = a.build_ack(t(5)).unwrap();
        assert_eq!(largest, 9);
        assert_eq!(blocks, vec![(9, 9), (5, 6), (0, 1)]);
    }

    #[test]
    fn hole_filling_merges_blocks() {
        let mut a = AckTracker::default();
        on(&mut a, 0, 0);
        on(&mut a, 2, 1);
        on(&mut a, 1, 2); // fills the hole
        let (_, _, blocks) = a.build_ack(t(3)).unwrap();
        assert_eq!(blocks, vec![(0, 2)]);
    }

    #[test]
    fn duplicates_detected() {
        let mut a = AckTracker::default();
        assert!(!on(&mut a, 3, 0));
        assert!(on(&mut a, 3, 1), "same pn again is a duplicate");
    }

    #[test]
    fn out_of_order_arrival_recorded() {
        let mut a = AckTracker::default();
        on(&mut a, 5, 0);
        on(&mut a, 3, 1); // arrives late
        assert_eq!(a.largest(), Some(5));
        let (_, _, blocks) = a.build_ack(t(2)).unwrap();
        assert_eq!(blocks, vec![(5, 5), (3, 3)]);
    }

    #[test]
    fn non_retransmittable_packets_do_not_trigger_acks() {
        let mut a = AckTracker::default();
        a.on_packet(0, t(0), false, EVERY, DELAY);
        a.on_packet(1, t(1), false, EVERY, DELAY);
        assert!(!a.ack_due(t(100), EVERY));
        assert_eq!(a.deadline(), None);
    }

    #[test]
    fn block_cap_drops_oldest() {
        let mut a = AckTracker::default();
        // 40 isolated ranges: every other pn.
        for pn in 0..80u64 {
            if pn % 2 == 0 {
                on(&mut a, pn, pn);
            }
        }
        let (_, _, blocks) = a.build_ack(t(100)).unwrap();
        assert_eq!(blocks.len(), MAX_BLOCKS);
        // The newest (largest) survive.
        assert_eq!(blocks[0], (78, 78));
    }
}
