//! gQUIC-like wire format — re-exported from `longlook-wire`.
//!
//! The packet/frame types moved down into the `longlook-wire` base crate
//! so the simulator's `Payload` enum can carry a typed [`QuicPacket`] by
//! value (the structured fast path). This module keeps the historical
//! `longlook_quic::wire::*` paths working.

pub use longlook_wire::quic::{
    AckBlock, Frame, HandshakeKind, QuicPacket, WireError, HEADER_SIZE, MAX_ACK_BLOCKS,
    MAX_PACKET_PAYLOAD,
};
