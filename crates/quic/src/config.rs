//! QUIC connection configuration.
//!
//! Every knob the paper varies is a field here: the NACK threshold
//! (Fig 10), MACW via the Cubic config (Figs 2, 15), MSPC (Sec 5.2),
//! 0-RTT (Fig 7), pacing, HyStart, and the choice of congestion
//! controller (Fig 3b). `longlook-core`'s version model maps QUIC versions
//! 25-37 onto instances of this struct.

use longlook_sim::time::Dur;
use longlook_transport::cubic::CubicConfig;

/// Which congestion controller to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcKind {
    /// Cubic (the deployed default the paper measures).
    Cubic,
    /// Experimental BBR (Fig 3b).
    Bbr,
}

/// QUIC connection configuration.
#[derive(Debug, Clone)]
pub struct QuicConfig {
    /// Sender maximum segment size (stream payload budget per packet).
    pub mss: u64,
    /// Congestion controller selection.
    pub cc: CcKind,
    /// Cubic parameters (MACW, N-connection emulation, HyStart, ...).
    pub cubic: CubicConfig,
    /// Consecutive-NACK threshold for fast retransmit (gQUIC default 3).
    /// The fixed threshold is why QUIC misreads deep reordering as loss
    /// (Sec 5.2, Fig 10).
    pub nack_threshold: u32,
    /// Adapt the NACK threshold upward when a retransmission is proven
    /// spurious (the DSACK-like behavior the paper recommends QUIC adopt).
    pub adaptive_nack: bool,
    /// Also declare loss by time: packets older than 1.25 * sRTT below the
    /// largest acked ("time based" loss detection QUIC was experimenting
    /// with per the paper).
    pub time_loss_detection: bool,
    /// Enable tail loss probes.
    pub tlp: bool,
    /// Enable packet pacing.
    pub pacing: bool,
    /// Maximum concurrent streams per connection (MSPC, default 100).
    pub max_streams: u32,
    /// Initial connection-level receive window (bytes). gQUIC auto-tunes
    /// this upward (doubling) while the receiver consumes fast enough.
    pub conn_recv_window: u64,
    /// Initial per-stream receive window (bytes).
    pub stream_recv_window: u64,
    /// Auto-tune ceiling for the connection window.
    pub conn_recv_window_max: u64,
    /// Auto-tune ceiling for stream windows.
    pub stream_recv_window_max: u64,
    /// Enable receive-window auto-tuning (double the window whenever two
    /// consecutive window updates are less than 2 x sRTT apart). This is
    /// the mechanism behind the paper's mobile finding: a phone that
    /// cannot consume packets in userspace never grows its windows, so
    /// the sender ends up Application-Limited (Fig 13).
    pub flow_auto_tune: bool,
    /// Send an ack after this many unacked data packets.
    pub ack_every: u32,
    /// Delayed-ack timer.
    pub delayed_ack: Dur,
    /// RTT assumed before the first sample.
    pub initial_rtt: Dur,
    /// Whether the client may attempt 0-RTT when it has cached state.
    pub zero_rtt_enabled: bool,
    /// Whether the server accepts 0-RTT data before the full handshake
    /// (real servers reject when the cached server config expired). When
    /// `false`, a 0-RTT attempt draws a REJ: the client falls back to a
    /// full 1-RTT handshake and retransmits the early data.
    pub zero_rtt_accept: bool,
    /// Arm the connection watchdog: give up with a typed
    /// [`longlook_transport::ConnError`] when the handshake exceeds
    /// `handshake_timeout` or an established connection sits idle with
    /// outstanding work past `idle_timeout`. Off by default so unfaulted
    /// runs schedule no extra timers; the testbed flips it on whenever a
    /// fault plan is attached.
    pub watchdog: bool,
    /// Handshake deadline when the watchdog is armed.
    pub handshake_timeout: Dur,
    /// Idle deadline (no forward progress with work outstanding) when the
    /// watchdog is armed.
    pub idle_timeout: Dur,
    /// Test-only canary: swallow watchdog expiry without surfacing the
    /// typed error, leaving the connection incomplete and silent. Exists
    /// so the fuzzer's no-silent-livelock oracle has a real bug to catch
    /// and shrink; never set outside the fuzz harness.
    #[doc(hidden)]
    pub canary_mute_watchdog: bool,
}

impl Default for QuicConfig {
    /// QUIC 34 as calibrated by the paper against Google's servers:
    /// MACW = 430, N = 2, NACK threshold 3, MSPC 100, 0-RTT on.
    fn default() -> Self {
        let mss = 1350;
        QuicConfig {
            mss,
            cc: CcKind::Cubic,
            cubic: CubicConfig::quic34(mss),
            nack_threshold: 3,
            adaptive_nack: false,
            time_loss_detection: false,
            tlp: true,
            pacing: true,
            max_streams: 100,
            // gQUIC-era initial flow-control windows; auto-tuning grows
            // them toward the ceilings on fast consumers.
            conn_recv_window: 192 * 1024,
            stream_recv_window: 128 * 1024,
            conn_recv_window_max: 15 * 1024 * 1024,
            stream_recv_window_max: 6 * 1024 * 1024,
            flow_auto_tune: true,
            ack_every: 2,
            delayed_ack: Dur::from_millis(25),
            initial_rtt: Dur::from_millis(100),
            zero_rtt_enabled: true,
            zero_rtt_accept: true,
            watchdog: false,
            handshake_timeout: Dur::from_secs(30),
            idle_timeout: Dur::from_secs(60),
            canary_mute_watchdog: false,
        }
    }
}

impl QuicConfig {
    /// The miscalibrated public-release configuration of Fig 2: small
    /// MACW (107), a conservative initial window, and the Chromium 52
    /// ssthresh bug (the slow-start threshold never raised to the
    /// receiver-advertised buffer, forcing an early slow-start exit).
    pub fn uncalibrated() -> Self {
        let mut cfg = QuicConfig::default();
        cfg.cubic.max_cwnd_packets = Some(107);
        cfg.cubic.initial_cwnd_packets = 10;
        cfg.cubic.initial_ssthresh_packets = Some(20);
        cfg
    }

    /// QUIC 37 as shipped in Chromium 60: MACW = 2000, N = 1.
    pub fn quic37() -> Self {
        let mut cfg = QuicConfig::default();
        cfg.cubic.max_cwnd_packets = Some(2000);
        cfg.cubic.num_connections = 1;
        cfg
    }

    /// Round trips spent on connection establishment before request data
    /// can flow: 0 when a cached server config allows 0-RTT (Fig 7's
    /// repeat-visit case), otherwise 1 for the full REJ/SHLO exchange.
    ///
    /// Used by the fleet world's flight-granular model, where handshakes
    /// are charged as whole RTTs rather than simulated packet by packet.
    pub fn handshake_rtts(&self, zero_rtt_available: bool) -> u32 {
        if zero_rtt_available && self.zero_rtt_enabled && self.zero_rtt_accept {
            0
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_calibrated_quic34() {
        let c = QuicConfig::default();
        assert_eq!(c.cubic.max_cwnd_packets, Some(430));
        assert_eq!(c.cubic.num_connections, 2);
        assert_eq!(c.nack_threshold, 3);
        assert_eq!(c.max_streams, 100);
        assert!(c.zero_rtt_enabled);
        assert!(c.pacing);
    }

    #[test]
    fn uncalibrated_reproduces_the_bug() {
        let c = QuicConfig::uncalibrated();
        assert_eq!(c.cubic.max_cwnd_packets, Some(107));
        assert!(c.cubic.initial_ssthresh_packets.is_some());
    }

    #[test]
    fn quic37_raises_macw_and_drops_emulation() {
        let c = QuicConfig::quic37();
        assert_eq!(c.cubic.max_cwnd_packets, Some(2000));
        assert_eq!(c.cubic.num_connections, 1);
    }
}
