//! A gQUIC-like application-layer transport for the `longlook` testbed.
//!
//! Feature-faithful to the 2016-era protocol the paper measured:
//! 0-RTT/1-RTT connection establishment with a server-config cache,
//! multiplexed streams free of cross-stream head-of-line blocking,
//! monotonic packet numbers (no retransmission ambiguity), ack decimation
//! with precise ack delay, NACK-threshold fast retransmit (the fixed
//! threshold of 3 the paper blames for reordering pathologies), tail loss
//! probes, RTO with backoff, Cubic (with N-connection emulation and the
//! MACW clamp) or experimental BBR, pacing, and two-level flow control.

pub mod config;
pub mod connection;
pub mod recv_ack;
pub mod sent;
pub mod streams;
pub mod wire;

pub use config::{CcKind, QuicConfig};
pub use connection::{QuicConnection, Role};
pub use wire::{Frame, HandshakeKind, QuicPacket, WireError, MAX_ACK_BLOCKS, MAX_PACKET_PAYLOAD};

#[cfg(test)]
mod loopback_tests {
    //! Drive a client/server pair over an in-memory pipe with a fixed
    //! one-way delay and scriptable drops — no simulator involved, so
    //! these tests isolate the connection state machine itself.

    use crate::{QuicConfig, QuicConnection};
    use longlook_sim::packet::Payload;
    use longlook_sim::time::{Dur, Time};
    use longlook_transport::conn::{AppEvent, Connection, StreamId};
    use std::collections::VecDeque;

    const OWD: Dur = Dur::from_millis(18); // 36ms RTT

    struct Pipe {
        /// (deliver_at, payload) toward the peer.
        a_to_b: VecDeque<(Time, Payload)>,
        b_to_a: VecDeque<(Time, Payload)>,
        /// Drop the nth a->b packet (0-based counters).
        drop_a_to_b: Vec<u64>,
        sent_ab: u64,
    }

    impl Pipe {
        fn new() -> Self {
            Pipe {
                a_to_b: VecDeque::new(),
                b_to_a: VecDeque::new(),
                drop_a_to_b: Vec::new(),
                sent_ab: 0,
            }
        }
    }

    /// Run both endpoints until quiescent or `deadline`; returns collected
    /// app events from each side.
    fn run(
        a: &mut QuicConnection,
        b: &mut QuicConnection,
        pipe: &mut Pipe,
        deadline: Time,
    ) -> (Vec<AppEvent>, Vec<AppEvent>) {
        let mut now = Time::ZERO;
        let mut ev_a = Vec::new();
        let mut ev_b = Vec::new();
        loop {
            // Drain transmissions at `now`.
            while let Some(tx) = a.poll_transmit(now) {
                let dropped = pipe.drop_a_to_b.contains(&pipe.sent_ab);
                pipe.sent_ab += 1;
                if !dropped {
                    pipe.a_to_b.push_back((now + OWD, tx.payload));
                }
            }
            while let Some(tx) = b.poll_transmit(now) {
                pipe.b_to_a.push_back((now + OWD, tx.payload));
            }
            while let Some(e) = a.poll_event() {
                ev_a.push(e);
            }
            while let Some(e) = b.poll_event() {
                ev_b.push(e);
            }
            // Next event: earliest delivery or wakeup.
            let mut next: Option<Time> = None;
            let mut consider = |t: Option<Time>| {
                if let Some(t) = t {
                    next = Some(next.map_or(t, |n: Time| n.min(t)));
                }
            };
            consider(pipe.a_to_b.front().map(|&(t, _)| t));
            consider(pipe.b_to_a.front().map(|&(t, _)| t));
            consider(a.next_wakeup());
            consider(b.next_wakeup());
            let Some(next) = next else { break };
            if next > deadline {
                break;
            }
            now = now.max(next);
            // Deliver everything due.
            while pipe.a_to_b.front().is_some_and(|&(t, _)| t <= now) {
                let (_, p) = pipe.a_to_b.pop_front().expect("checked");
                b.on_datagram(p, now);
            }
            while pipe.b_to_a.front().is_some_and(|&(t, _)| t <= now) {
                let (_, p) = pipe.b_to_a.pop_front().expect("checked");
                a.on_datagram(p, now);
            }
            a.on_wakeup(now);
            b.on_wakeup(now);
        }
        (ev_a, ev_b)
    }

    fn pair(zero_rtt: bool) -> (QuicConnection, QuicConnection) {
        let cfg = QuicConfig::default();
        let c = QuicConnection::client(cfg.clone(), 7, zero_rtt, Time::ZERO);
        let s = QuicConnection::server(cfg, 7, Time::ZERO);
        (c, s)
    }

    fn total_bytes(events: &[AppEvent], id: StreamId) -> u64 {
        events
            .iter()
            .map(|e| match e {
                AppEvent::StreamData { id: i, bytes } if *i == id => *bytes,
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn one_rtt_handshake_completes() {
        let (mut c, mut s) = pair(false);
        assert!(!c.is_established());
        let mut pipe = Pipe::new();
        let (ev_c, _) = run(&mut c, &mut s, &mut pipe, Time::ZERO + Dur::from_secs(2));
        assert!(c.is_established());
        assert!(s.is_established());
        assert!(ev_c.contains(&AppEvent::HandshakeDone));
        assert!(c.server_config_learned(), "REJ delivers the server config");
        assert!(!c.used_zero_rtt());
    }

    #[test]
    fn zero_rtt_client_is_established_immediately() {
        let (c, _) = pair(true);
        assert!(c.is_established());
        assert!(c.used_zero_rtt());
    }

    #[test]
    fn small_transfer_end_to_end() {
        let (mut c, mut s) = pair(true);
        let now = Time::ZERO;
        let id = c.open_stream(now).expect("stream");
        c.stream_send(now, id, 200, true); // request
        let mut pipe = Pipe::new();
        let (_, ev_s) = run(&mut c, &mut s, &mut pipe, now + Dur::from_secs(2));
        assert_eq!(total_bytes(&ev_s, id), 200);
        assert!(ev_s.contains(&AppEvent::StreamOpened(id)));
        assert!(ev_s.contains(&AppEvent::StreamFin(id)));
    }

    #[test]
    fn server_responds_on_same_stream() {
        let (mut c, mut s) = pair(true);
        let now = Time::ZERO;
        let id = c.open_stream(now).expect("stream");
        c.stream_send(now, id, 300, true);
        // First run delivers the request.
        let mut pipe = Pipe::new();
        run(&mut c, &mut s, &mut pipe, now + Dur::from_millis(100));
        // Server answers with 100 KB on the same stream.
        s.stream_send(now + Dur::from_millis(100), id, 100_000, true);
        let (ev_c, _) = run(&mut c, &mut s, &mut pipe, now + Dur::from_secs(5));
        assert_eq!(total_bytes(&ev_c, id), 100_000);
        assert!(ev_c.contains(&AppEvent::StreamFin(id)));
    }

    #[test]
    fn bulk_transfer_is_complete_and_in_order() {
        let (mut c, mut s) = pair(true);
        let now = Time::ZERO;
        let id = c.open_stream(now).expect("stream");
        let size = 2_000_000u64;
        c.stream_send(now, id, size, true);
        let mut pipe = Pipe::new();
        let (_, ev_s) = run(&mut c, &mut s, &mut pipe, now + Dur::from_secs(30));
        assert_eq!(total_bytes(&ev_s, id), size);
        assert!(c.is_quiescent());
        let st = c.stats();
        assert!(st.packets_sent > size / 1350);
        assert_eq!(st.losses_detected, 0);
        assert_eq!(st.rto_count, 0);
    }

    #[test]
    fn lost_packet_is_recovered_by_nack_fast_retransmit() {
        let (mut c, mut s) = pair(true);
        let now = Time::ZERO;
        let id = c.open_stream(now).expect("stream");
        c.stream_send(now, id, 300_000, true);
        let mut pipe = Pipe::new();
        pipe.drop_a_to_b = vec![5]; // drop one early data packet
        let (_, ev_s) = run(&mut c, &mut s, &mut pipe, now + Dur::from_secs(30));
        assert_eq!(total_bytes(&ev_s, id), 300_000, "data fully recovered");
        let st = c.stats();
        assert!(st.losses_detected >= 1, "NACK threshold fired");
        assert!(st.retransmissions >= 1);
        assert!(ev_s.contains(&AppEvent::StreamFin(id)));
    }

    #[test]
    fn tail_loss_recovered_by_probe_or_rto() {
        let (mut c, mut s) = pair(true);
        let now = Time::ZERO;
        let id = c.open_stream(now).expect("stream");
        c.stream_send(now, id, 5 * 1350, true);
        let mut pipe = Pipe::new();
        // Drop tail data packets of the first flight.
        pipe.drop_a_to_b = vec![4, 5];
        let (_, ev_s) = run(&mut c, &mut s, &mut pipe, now + Dur::from_secs(10));
        assert_eq!(total_bytes(&ev_s, id), 5 * 1350, "tail recovered");
        let st = c.stats();
        assert!(
            st.tlp_count >= 1 || st.rto_count >= 1,
            "tail loss needs a timer-driven probe: {st:?}"
        );
    }

    #[test]
    fn mspc_limits_concurrent_streams() {
        let cfg = QuicConfig {
            max_streams: 3,
            ..QuicConfig::default()
        };
        let mut c = QuicConnection::client(cfg, 1, true, Time::ZERO);
        assert!(c.open_stream(Time::ZERO).is_some());
        assert!(c.open_stream(Time::ZERO).is_some());
        assert!(c.open_stream(Time::ZERO).is_some());
        assert!(c.open_stream(Time::ZERO).is_none(), "MSPC reached");
    }

    #[test]
    fn stream_slots_free_when_peer_fins() {
        let cfg = QuicConfig {
            max_streams: 1,
            ..QuicConfig::default()
        };
        let mut c = QuicConnection::client(cfg.clone(), 9, true, Time::ZERO);
        let mut s = QuicConnection::server(cfg, 9, Time::ZERO);
        let id = c.open_stream(Time::ZERO).expect("first stream");
        c.stream_send(Time::ZERO, id, 100, true);
        assert!(c.open_stream(Time::ZERO).is_none());
        let mut pipe = Pipe::new();
        run(
            &mut c,
            &mut s,
            &mut pipe,
            Time::ZERO + Dur::from_millis(200),
        );
        // Server finishes the stream.
        s.stream_send(Time::ZERO + Dur::from_millis(200), id, 50, true);
        run(&mut c, &mut s, &mut pipe, Time::ZERO + Dur::from_secs(2));
        assert!(c.open_stream(Time::ZERO + Dur::from_secs(2)).is_some());
    }

    #[test]
    fn rtt_estimate_converges_to_pipe_rtt() {
        let (mut c, mut s) = pair(true);
        let now = Time::ZERO;
        let id = c.open_stream(now).expect("stream");
        c.stream_send(now, id, 500_000, true);
        let mut pipe = Pipe::new();
        run(&mut c, &mut s, &mut pipe, now + Dur::from_secs(10));
        let srtt = c.srtt().as_millis_f64();
        assert!((srtt - 36.0).abs() < 8.0, "srtt = {srtt}ms");
    }

    #[test]
    fn state_trace_records_init_and_slow_start() {
        let (mut c, mut s) = pair(false);
        let now = Time::ZERO;
        let mut pipe = Pipe::new();
        run(&mut c, &mut s, &mut pipe, now + Dur::from_millis(500));
        let id = c.open_stream(now + Dur::from_millis(500)).expect("stream");
        c.stream_send(now + Dur::from_millis(500), id, 500_000, true);
        run(&mut c, &mut s, &mut pipe, now + Dur::from_secs(10));
        let trace = c.state_trace(now + Dur::from_secs(10));
        let labels = trace.labels();
        assert_eq!(labels[0], "Init");
        assert!(labels.contains(&"SlowStart"), "labels = {labels:?}");
    }

    #[test]
    fn cwnd_timeline_grows_during_transfer() {
        let (mut c, mut s) = pair(true);
        let now = Time::ZERO;
        let id = c.open_stream(now).expect("stream");
        c.stream_send(now, id, 1_000_000, true);
        let mut pipe = Pipe::new();
        run(&mut c, &mut s, &mut pipe, now + Dur::from_secs(10));
        let tl = c.cwnd_timeline();
        assert!(tl.len() > 3);
        let max = tl.iter().map(|&(_, w)| w).max().unwrap_or(0);
        assert!(max > 32 * 1350, "window grew past initial: {max}");
    }

    #[test]
    fn adaptive_nack_config_starts_at_default() {
        let cfg = QuicConfig {
            adaptive_nack: true,
            ..QuicConfig::default()
        };
        let c = QuicConnection::client(cfg, 2, true, Time::ZERO);
        assert_eq!(c.current_nack_threshold(), 3);
    }
}
