//! Stream state: send scheduling, receive reassembly, flow control.
//!
//! QUIC's independence between streams is what removes head-of-line
//! blocking: each receive stream reassembles on its own, so a hole in
//! stream A never delays delivery on stream B (contrast with the single
//! ordered byte stream in `longlook-tcp`).

use std::collections::BTreeMap;

/// A chunk of stream data scheduled for (re)transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Stream id.
    pub id: u32,
    /// Byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
    /// FIN rides on this chunk.
    pub fin: bool,
}

/// Sender side of one stream.
#[derive(Debug)]
pub struct SendStream {
    id: u32,
    /// Next fresh byte to transmit.
    next_offset: u64,
    /// Total bytes the application has queued.
    queued: u64,
    /// Whether the application finished the stream.
    fin_queued: bool,
    /// Whether the FIN has been transmitted at least once.
    fin_sent: bool,
    /// Peer flow-control limit: highest absolute offset we may send.
    max_offset: u64,
    /// Lost chunks awaiting retransmission (offset -> (len, fin)).
    retransmit: BTreeMap<u64, (u32, bool)>,
}

impl SendStream {
    /// Create a send stream with the peer's initial flow-control window.
    pub fn with_window(id: u32, max_offset: u64) -> Self {
        Self::new(id, max_offset)
    }

    /// Whether lost chunks are waiting for retransmission.
    pub fn has_retransmit_pending(&self) -> bool {
        !self.retransmit.is_empty()
    }

    /// Whether this stream would produce a chunk if asked (retransmission,
    /// fresh data within flow control, or a pending FIN).
    pub fn wants_to_send(&self) -> bool {
        self.has_retransmit_pending() || self.sendable_new() > 0 || self.fin_pending()
    }

    fn new(id: u32, max_offset: u64) -> Self {
        SendStream {
            id,
            next_offset: 0,
            queued: 0,
            fin_queued: false,
            fin_sent: false,
            max_offset,
            retransmit: BTreeMap::new(),
        }
    }

    /// Application queues more data.
    pub fn write(&mut self, bytes: u64, fin: bool) {
        debug_assert!(!self.fin_queued, "write after fin");
        self.queued += bytes;
        self.fin_queued |= fin;
    }

    /// Raise the peer's flow-control limit.
    pub fn on_window_update(&mut self, max_offset: u64) {
        self.max_offset = self.max_offset.max(max_offset);
    }

    /// Bytes of fresh data ready and allowed by stream flow control.
    pub fn sendable_new(&self) -> u64 {
        let unsent = self.queued.saturating_sub(self.next_offset);
        let fc_room = self.max_offset.saturating_sub(self.next_offset);
        unsent.min(fc_room)
    }

    /// Whether a bare FIN still needs to go out.
    pub fn fin_pending(&self) -> bool {
        self.fin_queued && !self.fin_sent && self.next_offset >= self.queued
    }

    /// Whether the stream is flow-control blocked (has data, no credit).
    pub fn blocked(&self) -> bool {
        self.queued > self.next_offset && self.next_offset >= self.max_offset
    }

    /// Produce the next chunk (retransmissions first), at most `budget`
    /// bytes. Returns `None` when nothing is sendable.
    pub fn next_chunk(&mut self, budget: u32) -> Option<Chunk> {
        if budget == 0 {
            return None;
        }
        // Retransmissions take priority and ignore flow control (the peer
        // already granted credit for those offsets).
        if let Some((&offset, &(len, fin))) = self.retransmit.iter().next() {
            let take = len.min(budget);
            self.retransmit.remove(&offset);
            if take < len {
                self.retransmit
                    .insert(offset + take as u64, (len - take, fin));
                return Some(Chunk {
                    id: self.id,
                    offset,
                    len: take,
                    fin: false,
                });
            }
            return Some(Chunk {
                id: self.id,
                offset,
                len: take,
                fin,
            });
        }
        let avail = self.sendable_new();
        if avail > 0 {
            let take = (avail.min(budget as u64)) as u32;
            let offset = self.next_offset;
            self.next_offset += take as u64;
            let fin = self.fin_queued && self.next_offset >= self.queued;
            if fin {
                self.fin_sent = true;
            }
            return Some(Chunk {
                id: self.id,
                offset,
                len: take,
                fin,
            });
        }
        if self.fin_pending() {
            self.fin_sent = true;
            return Some(Chunk {
                id: self.id,
                offset: self.next_offset,
                len: 0,
                fin: true,
            });
        }
        None
    }

    /// A chunk was declared lost: queue it for retransmission.
    pub fn on_chunk_lost(&mut self, chunk: &Chunk) {
        if chunk.len == 0 && chunk.fin {
            self.fin_sent = false;
            return;
        }
        // Merge naively: exact-offset replacement is enough because chunks
        // are only ever split, never re-fragmented differently.
        self.retransmit.insert(chunk.offset, (chunk.len, chunk.fin));
    }

    /// Whether all queued data (and FIN) has been transmitted at least
    /// once and no retransmissions are pending.
    pub fn drained(&self) -> bool {
        self.next_offset >= self.queued
            && self.retransmit.is_empty()
            && (!self.fin_queued || self.fin_sent)
    }

    /// Total bytes queued by the application so far.
    pub fn queued_total(&self) -> u64 {
        self.queued
    }
}

/// Receiver side of one stream: interval reassembly.
#[derive(Debug, Default)]
pub struct RecvStream {
    /// Received intervals (start -> end), non-overlapping, non-adjacent.
    segments: BTreeMap<u64, u64>,
    /// Everything below this has been delivered to the application.
    delivered: u64,
    /// Final length once FIN seen.
    fin_at: Option<u64>,
    fin_delivered: bool,
}

impl RecvStream {
    /// Ingest a chunk; returns newly deliverable in-order bytes.
    pub fn on_chunk(&mut self, offset: u64, len: u32, fin: bool) -> u64 {
        if fin {
            self.fin_at = Some(offset + len as u64);
        }
        if len > 0 {
            let chunk_end = offset + len as u64;
            // Fast paths for the common in-order flow, skipping the
            // insert-then-immediately-remove churn on the segment map:
            // a pure duplicate below the delivery point is a no-op, and a
            // chunk extending the in-order point that cannot reach the
            // first buffered segment advances `delivered` directly.
            if chunk_end <= self.delivered {
                return 0;
            }
            if offset <= self.delivered
                && self
                    .segments
                    .first_key_value()
                    .is_none_or(|(&s, _)| s > chunk_end)
            {
                let before = self.delivered;
                self.delivered = chunk_end;
                return self.delivered - before;
            }
            let mut start = offset;
            let mut end = chunk_end;
            // Merge with overlapping/adjacent existing segments. Segments
            // are non-overlapping and non-adjacent, so both starts and
            // ends are strictly ordered: the mergeable run is contiguous,
            // and walking backwards from the insertion point can stop at
            // the first segment that ends before `start`.
            while let Some((&s, &e)) = self.segments.range(..=end).next_back() {
                if e < start {
                    break;
                }
                self.segments.remove(&s);
                start = start.min(s);
                end = end.max(e);
            }
            self.segments.insert(start, end);
        }
        // Advance the in-order point.
        let before = self.delivered;
        while let Some((&s, &e)) = self.segments.first_key_value() {
            if s <= self.delivered {
                self.delivered = self.delivered.max(e);
                self.segments.remove(&s);
            } else {
                break;
            }
        }
        self.delivered - before
    }

    /// Whether the FIN point has been reached (callers emit StreamFin
    /// once; see [`RecvStream::take_fin`]).
    pub fn fin_reached(&self) -> bool {
        matches!(self.fin_at, Some(end) if self.delivered >= end)
    }

    /// Latch the FIN event: true exactly once when complete.
    pub fn take_fin(&mut self) -> bool {
        if self.fin_reached() && !self.fin_delivered {
            self.fin_delivered = true;
            true
        } else {
            false
        }
    }

    /// Bytes delivered in order so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Bytes buffered out of order (for flow-control accounting).
    pub fn buffered_out_of_order(&self) -> u64 {
        self.segments.iter().map(|(&s, &e)| e - s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_stream_chunks_respect_budget() {
        let mut s = SendStream::new(1, u64::MAX);
        s.write(3000, true);
        let c1 = s.next_chunk(1350).unwrap();
        assert_eq!((c1.offset, c1.len, c1.fin), (0, 1350, false));
        let c2 = s.next_chunk(1350).unwrap();
        assert_eq!((c2.offset, c2.len, c2.fin), (1350, 1350, false));
        let c3 = s.next_chunk(1350).unwrap();
        assert_eq!((c3.offset, c3.len, c3.fin), (2700, 300, true));
        assert!(s.next_chunk(1350).is_none());
        assert!(s.drained());
    }

    #[test]
    fn flow_control_blocks_fresh_data() {
        let mut s = SendStream::new(1, 1000);
        s.write(5000, false);
        let c = s.next_chunk(1350).unwrap();
        assert_eq!(c.len, 1000);
        assert!(s.next_chunk(1350).is_none(), "blocked at max_offset");
        assert!(s.blocked());
        s.on_window_update(2500);
        let c = s.next_chunk(1350).unwrap();
        assert_eq!((c.offset, c.len), (1000, 1350));
        assert!(!s.blocked());
    }

    #[test]
    fn window_updates_never_shrink() {
        let mut s = SendStream::new(1, 1000);
        s.on_window_update(500);
        s.write(800, false);
        assert_eq!(s.next_chunk(2000).unwrap().len, 800);
    }

    #[test]
    fn retransmissions_take_priority_and_split() {
        let mut s = SendStream::new(1, u64::MAX);
        s.write(4000, false);
        let lost = s.next_chunk(1350).unwrap();
        let _in_flight = s.next_chunk(1350).unwrap();
        s.on_chunk_lost(&lost);
        // Small budget splits the retransmission.
        let r1 = s.next_chunk(500).unwrap();
        assert_eq!((r1.offset, r1.len), (0, 500));
        let r2 = s.next_chunk(1350).unwrap();
        assert_eq!((r2.offset, r2.len), (500, 850));
        // Then fresh data resumes where it left off.
        let fresh = s.next_chunk(1350).unwrap();
        assert_eq!(fresh.offset, 2700);
    }

    #[test]
    fn bare_fin_is_sent_and_can_be_lost() {
        let mut s = SendStream::new(1, u64::MAX);
        s.write(0, true);
        let f = s.next_chunk(1350).unwrap();
        assert_eq!((f.len, f.fin), (0, true));
        assert!(s.drained());
        s.on_chunk_lost(&f);
        assert!(!s.drained());
        let f2 = s.next_chunk(1350).unwrap();
        assert!(f2.fin);
    }

    #[test]
    fn recv_in_order_delivery() {
        let mut r = RecvStream::default();
        assert_eq!(r.on_chunk(0, 100, false), 100);
        assert_eq!(r.on_chunk(100, 100, false), 100);
        assert_eq!(r.delivered(), 200);
        assert!(!r.fin_reached());
    }

    #[test]
    fn recv_out_of_order_holds_then_releases() {
        let mut r = RecvStream::default();
        assert_eq!(r.on_chunk(100, 100, false), 0);
        assert_eq!(r.buffered_out_of_order(), 100);
        // Filling the hole releases both.
        assert_eq!(r.on_chunk(0, 100, false), 200);
        assert_eq!(r.buffered_out_of_order(), 0);
    }

    #[test]
    fn recv_duplicate_and_overlap_are_idempotent() {
        let mut r = RecvStream::default();
        r.on_chunk(0, 100, false);
        assert_eq!(r.on_chunk(0, 100, false), 0, "exact duplicate");
        assert_eq!(r.on_chunk(50, 100, false), 50, "overlap extends");
        assert_eq!(r.delivered(), 150);
    }

    #[test]
    fn recv_fin_handling() {
        let mut r = RecvStream::default();
        r.on_chunk(0, 50, false);
        r.on_chunk(50, 50, true);
        assert!(r.fin_reached());
        assert!(r.take_fin());
        assert!(!r.take_fin(), "fin latches once");
    }

    #[test]
    fn recv_fin_waits_for_holes() {
        let mut r = RecvStream::default();
        r.on_chunk(100, 50, true);
        assert!(!r.fin_reached());
        r.on_chunk(0, 100, false);
        assert!(r.fin_reached());
    }

    #[test]
    fn recv_zero_length_fin() {
        let mut r = RecvStream::default();
        r.on_chunk(0, 100, false);
        assert_eq!(r.on_chunk(100, 0, true), 0);
        assert!(r.fin_reached());
    }

    #[test]
    fn recv_merges_many_segments() {
        let mut r = RecvStream::default();
        // Every other 10-byte block first.
        for i in (1..10).step_by(2) {
            r.on_chunk(i * 10, 10, false);
        }
        assert_eq!(r.delivered(), 0);
        // Then the gaps.
        let mut total = 0;
        for i in (0..10).step_by(2) {
            total += r.on_chunk(i * 10, 10, false);
        }
        assert_eq!(total, 100);
        assert_eq!(r.delivered(), 100);
    }
}
