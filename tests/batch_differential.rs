//! Batched-hot-path differential referee: `LONGLOOK_BATCH=on` vs `off`.
//!
//! The batched path changes *how* work is done, never *what* happens:
//!
//! * `World::dispatch_burst` consumes runs of same-instant deliveries to
//!   one node without returning to the outer loop, draining each packet's
//!   wakes and outbox before consuming the next so every derived event
//!   gets the identical `(time, seq)` key the per-event loop would assign;
//! * the QUIC sent-packet store swaps a `BTreeMap` walk for a slab with
//!   amortized NACK horizon accounting (`SentSlab`);
//! * both transports defer loss/RTO timer re-arming to one pure
//!   resolution per dispatch instead of recomputing per packet.
//!
//! Each is an equivalence-by-construction argument; this suite is the
//! referee that re-checks the conclusion end to end: bit-identical
//! `RunRecord`s and `StateTrace`s over clean / lossy / jittered cells,
//! identical `TraumaRecord`s when fault windows split bursts mid-run
//! (blackout, flap, bandwidth cliff, peer stall, duplication), and
//! identical event counts and scheduler high-water marks on bulk
//! transfers for both protocols.
//!
//! Everything runs inside ONE `#[test]` because the A/B switch is the
//! `LONGLOOK_BATCH` environment variable, which is process-global: two
//! tests flipping it concurrently in the same binary would race.

use longlook_core::prelude::*;
use longlook_transport::conn::ConnStats;

/// Run `f` with `LONGLOOK_BATCH` set to `mode`, restoring the prior
/// value afterwards.
fn with_batch<T>(mode: &str, f: impl FnOnce() -> T) -> T {
    let saved = std::env::var("LONGLOOK_BATCH").ok();
    std::env::set_var("LONGLOOK_BATCH", mode);
    let out = f();
    match saved {
        Some(v) => std::env::set_var("LONGLOOK_BATCH", v),
        None => std::env::remove_var("LONGLOOK_BATCH"),
    }
    out
}

/// Exhaustive deterministic rendering of a record set — every counter,
/// the full state trace, and the complete cwnd timeline as exact
/// integers, so equality is bit-for-bit.
fn render(records: &[RunRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let stats_line = |s: &ConnStats| {
        format!(
            "sent={} recv={} bytes_out={} bytes_in={} acked={} rexmit={} spurious={} \
             losses={} rto={} tlp={} acks={} max_cwnd={}",
            s.packets_sent,
            s.packets_received,
            s.bytes_sent,
            s.bytes_received,
            s.bytes_acked,
            s.retransmissions,
            s.spurious_retransmissions,
            s.losses_detected,
            s.rto_count,
            s.tlp_count,
            s.acks_sent,
            s.max_cwnd,
        )
    };
    for (k, r) in records.iter().enumerate() {
        let _ = writeln!(
            out,
            "round {k}: plt_ns={} ended_ns={}",
            r.plt
                .map_or_else(|| "none".into(), |d| d.as_nanos().to_string()),
            r.ended_at.as_nanos(),
        );
        let _ = writeln!(out, "  client {}", stats_line(&r.client_stats));
        if let Some(s) = &r.server_stats {
            let _ = writeln!(out, "  server {}", stats_line(s));
        }
        if let Some(t) = &r.server_trace {
            let _ = writeln!(
                out,
                "  trace={} span_ns={}",
                t.labels().join(">"),
                t.span.as_nanos()
            );
        }
        for &(t, w) in &r.server_cwnd {
            let _ = writeln!(out, "  cwnd {} {}", t.as_nanos(), w);
        }
    }
    out
}

fn scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "clean",
            Scenario::new(NetProfile::baseline(10.0), PageSpec::single(40 * 1024))
                .with_rounds(2)
                .with_seed(8301),
        ),
        (
            "lossy",
            Scenario::new(
                NetProfile::baseline(5.0).with_loss(0.02),
                PageSpec::single(80 * 1024),
            )
            .with_rounds(2)
            .with_seed(8302),
        ),
        (
            "jittered",
            Scenario::new(
                NetProfile::baseline(20.0).with_jitter(Dur::from_millis(4)),
                PageSpec::uniform(5, 20 * 1024),
            )
            .with_rounds(2)
            .with_seed(8303),
        ),
        // Degenerate case: a page small enough that most "bursts" are a
        // single packet — the batched loop must collapse to exactly the
        // per-event behavior.
        (
            "tiny",
            Scenario::new(NetProfile::baseline(10.0), PageSpec::single(1024))
                .with_rounds(2)
                .with_seed(8304),
        ),
    ]
}

fn fev(at_ms: u64, dur_ms: u64, kind: FaultKind) -> FaultEvent {
    FaultEvent {
        at: Time::ZERO + Dur::from_millis(at_ms),
        dur: Dur::from_millis(dur_ms),
        dir: FaultDir::Both,
        kind,
    }
}

/// Fault plans chosen to cut through the middle of delivery bursts: a
/// blackout opening mid-transfer, a flapping link, a bandwidth cliff
/// spanning most of the run, a frozen server, and same-instant duplicate
/// deliveries (which extend bursts).
fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "blackout_mid",
            FaultPlan::new().with_event(fev(30, 80, FaultKind::Blackout)),
        ),
        (
            "flap",
            FaultPlan::new().with_event(fev(
                20,
                200,
                FaultKind::Flap {
                    period: Dur::from_millis(10),
                    down_pm: 400,
                },
            )),
        ),
        (
            "cliff",
            FaultPlan::new().with_event(fev(10, 300, FaultKind::BandwidthCliff { factor_pm: 200 })),
        ),
        (
            "server_stall",
            FaultPlan::new().with_event(fev(
                40,
                60,
                FaultKind::PeerStall {
                    side: PeerSide::Server,
                },
            )),
        ),
        (
            "duplicate",
            FaultPlan::new().with_event(fev(0, 400, FaultKind::Duplicate { prob_pm: 150 })),
        ),
    ]
}

fn faulted_scenario(plan: FaultPlan) -> Scenario {
    let net = NetProfile::baseline(5.0).with_fault(plan);
    Scenario::new(net, PageSpec::single(120 * 1024))
        .with_rounds(1)
        .with_seed(8400)
}

/// One bulk page load; returns (events_processed, scheduled_peak).
fn bulk_cell(proto: &ProtoConfig) -> (u64, u64) {
    let net = NetProfile::baseline(20.0);
    let page = PageSpec::single(2 * 1024 * 1024);
    let mut tb = Testbed::direct(
        8899,
        &net,
        DeviceProfile::DESKTOP,
        page.clone(),
        vec![FlowSpec {
            proto: proto.clone(),
            zero_rtt: false,
            app: Box::new(WebClient::new(page)),
        }],
        None,
        true,
    );
    tb.run(Dur::from_secs(120));
    (tb.world.events_processed(), tb.world.scheduled_peak())
}

#[test]
fn batched_and_per_event_paths_are_observationally_identical() {
    let protos = [
        ("quic", ProtoConfig::Quic(QuicConfig::default())),
        ("tcp", ProtoConfig::Tcp(TcpConfig::default())),
    ];

    // Full RunRecord + StateTrace equality over clean / lossy / jittered
    // / tiny cells.
    for (proto_name, proto) in &protos {
        for (sc_name, sc) in scenarios() {
            let on = with_batch("on", || render(&run_records(proto, &sc)));
            let off = with_batch("off", || render(&run_records(proto, &sc)));
            assert_eq!(
                on, off,
                "{proto_name}/{sc_name}: RunRecords diverged between batched \
                 and per-event paths"
            );
        }
    }

    // Faulted cells: fault windows open and close in the middle of
    // delivery bursts; the full TraumaRecord (outcome, typed errors,
    // app-level bytes, record) must still match field for field.
    for (proto_name, proto) in &protos {
        for (plan_name, plan) in fault_plans() {
            let sc = faulted_scenario(plan);
            let on = with_batch("on", || run_trauma_cell(proto, &sc, 0));
            let off = with_batch("off", || run_trauma_cell(proto, &sc, 0));
            assert_eq!(
                on, off,
                "{proto_name}/{plan_name}: TraumaRecord diverged between \
                 batched and per-event paths"
            );
        }
    }

    // Event-loop accounting equality on a bulk transfer: the burst loop
    // increments `events_processed` once per consumed event and assigns
    // every derived push the same `(time, seq)` key, so counts and the
    // scheduler high-water mark match exactly.
    for (proto_name, proto) in &protos {
        let (ev_on, peak_on) = with_batch("on", || bulk_cell(proto));
        let (ev_off, peak_off) = with_batch("off", || bulk_cell(proto));
        assert_eq!(ev_on, ev_off, "{proto_name}: events_processed diverged");
        assert_eq!(peak_on, peak_off, "{proto_name}: scheduled_peak diverged");
        assert!(ev_on > 1_000, "{proto_name}: bulk cell suspiciously small");
    }
}
