//! Wire-path differential referee: structured vs encoded payloads.
//!
//! The structured fast path hands typed `QuicPacket`/`TcpSegment` values
//! straight to the peer and charges links analytic `encoded_len()` sizes;
//! the encoded path serializes to bytes and reparses on receipt. The two
//! must be *observationally identical* — same wire-size charging, same
//! frame contents after transit, so same RNG draw sequence, timing, and
//! bit-identical `RunRecord`s, `StateTrace`s, and event counts. Scenarios
//! with loss and jitter exercise drop/reorder handling of structured
//! packets (links must drop whole packets, never forge bytes).
//!
//! Everything runs inside ONE `#[test]` because the A/B switch is the
//! `LONGLOOK_WIRE` environment variable, which is process-global: two
//! tests flipping it concurrently in the same test binary would race.

use longlook_core::prelude::*;
use longlook_transport::conn::ConnStats;

/// Run `f` with `LONGLOOK_WIRE` set to `mode`, restoring the prior value
/// afterwards.
fn with_wire<T>(mode: &str, f: impl FnOnce() -> T) -> T {
    let saved = std::env::var("LONGLOOK_WIRE").ok();
    std::env::set_var("LONGLOOK_WIRE", mode);
    let out = f();
    match saved {
        Some(v) => std::env::set_var("LONGLOOK_WIRE", v),
        None => std::env::remove_var("LONGLOOK_WIRE"),
    }
    out
}

/// Exhaustive deterministic rendering of a record set — every counter,
/// the full state trace, and the complete cwnd timeline as exact
/// integers, so equality is bit-for-bit.
fn render(records: &[RunRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let stats_line = |s: &ConnStats| {
        format!(
            "sent={} recv={} bytes_out={} bytes_in={} acked={} rexmit={} spurious={} \
             losses={} rto={} tlp={} acks={} max_cwnd={}",
            s.packets_sent,
            s.packets_received,
            s.bytes_sent,
            s.bytes_received,
            s.bytes_acked,
            s.retransmissions,
            s.spurious_retransmissions,
            s.losses_detected,
            s.rto_count,
            s.tlp_count,
            s.acks_sent,
            s.max_cwnd,
        )
    };
    for (k, r) in records.iter().enumerate() {
        let _ = writeln!(
            out,
            "round {k}: plt_ns={} ended_ns={}",
            r.plt
                .map_or_else(|| "none".into(), |d| d.as_nanos().to_string()),
            r.ended_at.as_nanos(),
        );
        let _ = writeln!(out, "  client {}", stats_line(&r.client_stats));
        if let Some(s) = &r.server_stats {
            let _ = writeln!(out, "  server {}", stats_line(s));
        }
        if let Some(t) = &r.server_trace {
            let _ = writeln!(
                out,
                "  trace={} span_ns={}",
                t.labels().join(">"),
                t.span.as_nanos()
            );
        }
        for &(t, w) in &r.server_cwnd {
            let _ = writeln!(out, "  cwnd {} {}", t.as_nanos(), w);
        }
    }
    out
}

fn scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "clean",
            Scenario::new(NetProfile::baseline(10.0), PageSpec::single(40 * 1024))
                .with_rounds(2)
                .with_seed(8201),
        ),
        (
            "lossy",
            Scenario::new(
                NetProfile::baseline(5.0).with_loss(0.02),
                PageSpec::single(80 * 1024),
            )
            .with_rounds(2)
            .with_seed(8202),
        ),
        (
            "jittered",
            Scenario::new(
                NetProfile::baseline(20.0).with_jitter(Dur::from_millis(4)),
                PageSpec::uniform(5, 20 * 1024),
            )
            .with_rounds(2)
            .with_seed(8203),
        ),
    ]
}

/// One bulk page load; returns (events_processed, scheduled_peak).
fn bulk_cell(proto: &ProtoConfig) -> (u64, u64) {
    let net = NetProfile::baseline(20.0);
    let page = PageSpec::single(2 * 1024 * 1024);
    let mut tb = Testbed::direct(
        8888,
        &net,
        DeviceProfile::DESKTOP,
        page.clone(),
        vec![FlowSpec {
            proto: proto.clone(),
            zero_rtt: false,
            app: Box::new(WebClient::new(page)),
        }],
        None,
        true,
    );
    tb.run(Dur::from_secs(120));
    (tb.world.events_processed(), tb.world.scheduled_peak())
}

#[test]
fn structured_and_encoded_wire_paths_are_observationally_identical() {
    let protos = [
        ("quic", ProtoConfig::Quic(QuicConfig::default())),
        ("tcp", ProtoConfig::Tcp(TcpConfig::default())),
    ];

    // Full RunRecord + StateTrace equality over clean / lossy / jittered.
    for (proto_name, proto) in &protos {
        for (sc_name, sc) in scenarios() {
            let structured = with_wire("structured", || render(&run_records(proto, &sc)));
            let encoded = with_wire("encoded", || render(&run_records(proto, &sc)));
            assert_eq!(
                structured, encoded,
                "{proto_name}/{sc_name}: RunRecords diverged between wire paths"
            );
        }
    }

    // Event-loop accounting equality on a bulk transfer: identical wire
    // sizes mean identical link timing, so the push/pop sequences — and
    // therefore event counts and the scheduler high-water mark — match.
    for (proto_name, proto) in &protos {
        let (ev_s, peak_s) = with_wire("structured", || bulk_cell(proto));
        let (ev_e, peak_e) = with_wire("encoded", || bulk_cell(proto));
        assert_eq!(ev_s, ev_e, "{proto_name}: events_processed diverged");
        assert_eq!(peak_s, peak_e, "{proto_name}: scheduled_peak diverged");
        assert!(ev_s > 1_000, "{proto_name}: bulk cell suspiciously small");
    }
}
