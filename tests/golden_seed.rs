//! Golden seed-stability snapshot.
//!
//! Pins the full `RunRecord` summary (exact nanosecond PLTs, every
//! connection counter, and the congestion-control visit sequence) of one
//! small clean/lossy scenario pair, for both QUIC and TCP. Any silent
//! behavior drift in `longlook-sim` or the transports — a changed RNG
//! draw order, an off-by-one in loss detection, a reordered event tie —
//! fails *this named test* instead of surfacing as a mysteriously shifted
//! downstream statistic.
//!
//! The snapshot is plain text rendered by [`render_records`] (std-only,
//! no serde). If a change is *intentional* (e.g. a transport fix), re-run
//! with `LONGLOOK_BLESS=1 cargo test -p longlook-integration --test
//! golden_seed -- --nocapture` and paste the printed block over the
//! constant it names.

use longlook_core::prelude::*;

fn clean_scenario() -> Scenario {
    Scenario::new(NetProfile::baseline(10.0), PageSpec::single(30 * 1024))
        .with_rounds(2)
        .with_seed(9001)
}

fn lossy_scenario() -> Scenario {
    Scenario::new(
        NetProfile::baseline(5.0).with_loss(0.02),
        PageSpec::single(60 * 1024),
    )
    .with_rounds(2)
    .with_seed(9002)
}

/// Deterministic full-fidelity text rendering of a record set: exact
/// integers only, so equality is bit-for-bit.
fn render_records(records: &[RunRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (k, r) in records.iter().enumerate() {
        let _ = writeln!(
            out,
            "round {k}: plt_ns={} ended_ns={}",
            r.plt
                .map_or_else(|| "none".into(), |d| d.as_nanos().to_string()),
            r.ended_at.as_nanos(),
        );
        let c = &r.client_stats;
        let _ = writeln!(
            out,
            "  client: sent={} recv={} bytes_out={} bytes_in={} acked={} rexmit={} \
             spurious={} losses={} rto={} tlp={} acks={} max_cwnd={}",
            c.packets_sent,
            c.packets_received,
            c.bytes_sent,
            c.bytes_received,
            c.bytes_acked,
            c.retransmissions,
            c.spurious_retransmissions,
            c.losses_detected,
            c.rto_count,
            c.tlp_count,
            c.acks_sent,
            c.max_cwnd,
        );
        if let Some(s) = &r.server_stats {
            let _ = writeln!(
                out,
                "  server: sent={} recv={} bytes_out={} bytes_in={} acked={} rexmit={} \
                 spurious={} losses={} rto={} tlp={} acks={} max_cwnd={}",
                s.packets_sent,
                s.packets_received,
                s.bytes_sent,
                s.bytes_received,
                s.bytes_acked,
                s.retransmissions,
                s.spurious_retransmissions,
                s.losses_detected,
                s.rto_count,
                s.tlp_count,
                s.acks_sent,
                s.max_cwnd,
            );
        }
        if let Some(t) = &r.server_trace {
            let _ = writeln!(
                out,
                "  trace: {} span_ns={}",
                t.labels().join(">"),
                t.span.as_nanos()
            );
        }
        let _ = writeln!(out, "  cwnd_points={}", r.server_cwnd.len());
    }
    out
}

fn check(name: &str, proto: &ProtoConfig, sc: &Scenario, golden: &str) {
    let rendered = render_records(&run_records(proto, sc));
    if std::env::var("LONGLOOK_BLESS").is_ok() {
        eprintln!("=== {name} ===\n{rendered}");
        return;
    }
    assert_eq!(
        rendered.trim(),
        golden.trim(),
        "\n{name}: RunRecord summary drifted from the golden snapshot.\n\
         If this change is intentional, bless a new snapshot:\n\
         LONGLOOK_BLESS=1 cargo test -p longlook-integration --test golden_seed -- --nocapture\n\
         --- actual ---\n{rendered}"
    );
}

const GOLDEN_QUIC_CLEAN: &str = "\
round 0: plt_ns=62780720 ended_ns=62780720
  client: sent=13 recv=26 bytes_out=2323 bytes_in=0 acked=200 rexmit=0 spurious=0 losses=0 rto=0 tlp=0 acks=12 max_cwnd=43200
  server: sent=26 recv=8 bytes_out=33150 bytes_in=0 acked=17316 rexmit=0 spurious=0 losses=0 rto=0 tlp=0 acks=1 max_cwnd=43200
  trace: Init>SlowStart>ApplicationLimited>SlowStart>ApplicationLimited span_ns=45114911
  cwnd_points=2
round 1: plt_ns=63850566 ended_ns=63850566
  client: sent=13 recv=26 bytes_out=2323 bytes_in=0 acked=200 rexmit=0 spurious=0 losses=0 rto=0 tlp=0 acks=12 max_cwnd=43200
  server: sent=26 recv=7 bytes_out=33150 bytes_in=0 acked=14652 rexmit=0 spurious=0 losses=0 rto=0 tlp=0 acks=1 max_cwnd=43200
  trace: Init>SlowStart>ApplicationLimited>SlowStart>ApplicationLimited span_ns=45649834
  cwnd_points=2";

const GOLDEN_QUIC_LOSSY: &str = "\
round 0: plt_ns=119615267 ended_ns=119615267
  client: sent=25 recv=49 bytes_out=3663 bytes_in=0 acked=200 rexmit=0 spurious=0 losses=0 rto=0 tlp=0 acks=24 max_cwnd=43200
  server: sent=50 recv=20 bytes_out=67050 bytes_in=0 acked=49284 rexmit=1 spurious=0 losses=1 rto=0 tlp=0 acks=1 max_cwnd=52650
  trace: Init>SlowStart>ApplicationLimited>SlowStart>ApplicationLimited>Recovery span_ns=101991408
  cwnd_points=9
round 1: plt_ns=119611897 ended_ns=119611897
  client: sent=25 recv=49 bytes_out=3743 bytes_in=0 acked=200 rexmit=0 spurious=0 losses=0 rto=0 tlp=0 acks=24 max_cwnd=43200
  server: sent=50 recv=20 bytes_out=67050 bytes_in=0 acked=49284 rexmit=1 spurious=0 losses=1 rto=0 tlp=0 acks=1 max_cwnd=51300
  trace: Init>SlowStart>ApplicationLimited>SlowStart>ApplicationLimited>Recovery span_ns=101869697
  cwnd_points=8";

const GOLDEN_TCP_CLEAN: &str = "\
round 0: plt_ns=141591472 ended_ns=141591472
  client: sent=16 recv=28 bytes_out=1568 bytes_in=34093 acked=687 rexmit=0 spurious=0 losses=0 rto=0 tlp=0 acks=13 max_cwnd=14350
  server: sent=28 recv=10 bytes_out=35622 bytes_in=687 acked=18664 rexmit=0 spurious=0 losses=0 rto=0 tlp=0 acks=0 max_cwnd=22800
  trace: Init>SlowStart>ApplicationLimited>SlowStart>ApplicationLimited span_ns=123925663
  cwnd_points=9
round 1: plt_ns=145870856 ended_ns=145870856
  client: sent=16 recv=28 bytes_out=1568 bytes_in=34093 acked=687 rexmit=0 spurious=0 losses=0 rto=0 tlp=0 acks=13 max_cwnd=14350
  server: sent=28 recv=10 bytes_out=35622 bytes_in=687 acked=18664 rexmit=0 spurious=0 losses=0 rto=0 tlp=0 acks=0 max_cwnd=22800
  trace: Init>SlowStart>ApplicationLimited>SlowStart>ApplicationLimited span_ns=127670124
  cwnd_points=9";

const GOLDEN_TCP_LOSSY: &str = "\
round 0: plt_ns=190378890 ended_ns=190378890
  client: sent=37 recv=49 bytes_out=2878 bytes_in=64813 acked=687 rexmit=0 spurious=0 losses=0 rto=0 tlp=0 acks=34 max_cwnd=14350
  server: sent=50 recv=23 bytes_out=68930 bytes_in=687 acked=25664 rexmit=1 spurious=0 losses=1 rto=0 tlp=0 acks=0 max_cwnd=29800
  trace: Init>SlowStart>ApplicationLimited>SlowStart>Recovery span_ns=172755031
  cwnd_points=15
round 1: plt_ns=213171400 ended_ns=213171400
  client: sent=35 recv=49 bytes_out=2730 bytes_in=64813 acked=687 rexmit=0 spurious=0 losses=0 rto=0 tlp=0 acks=32 max_cwnd=14350
  server: sent=50 recv=30 bytes_out=68930 bytes_in=687 acked=50864 rexmit=1 spurious=0 losses=1 rto=0 tlp=0 acks=0 max_cwnd=22800
  trace: Init>SlowStart>ApplicationLimited>SlowStart>Recovery>CongestionAvoidance>ApplicationLimited span_ns=195429200
  cwnd_points=15";

/// Zero-cost-when-off referee: attaching an *empty* `FaultPlan` arms the
/// whole fault layer (link views, stall windows, the connection watchdog)
/// yet must not perturb a single RunRecord field. If arming ever costs an
/// RNG draw, an extra timer firing mid-transfer, or a reordered event tie,
/// this test pins the drift to the fault layer instead of letting it
/// surface as a blessed-snapshot change.
#[test]
fn armed_empty_fault_plan_is_invisible() {
    for (name, sc) in [("clean", clean_scenario()), ("lossy", lossy_scenario())] {
        let mut armed = sc.clone();
        armed.net = armed.net.clone().with_fault(FaultPlan::new());
        for proto in [
            ProtoConfig::Quic(QuicConfig::default()),
            ProtoConfig::Tcp(TcpConfig::default()),
        ] {
            let off = render_records(&run_records(&proto, &sc));
            let on = render_records(&run_records(&proto, &armed));
            assert_eq!(
                off, on,
                "{name} / {proto:?}: an empty fault plan changed the record \
                 (the fault layer is not zero-cost when idle)"
            );
        }
    }
}

/// Batched-hot-path referee: the snapshots below were blessed under the
/// per-event dispatch path. `LONGLOOK_BATCH=on` (burst delivery, slab
/// sent-store, lazy timer re-arm) must reproduce every one of them bit
/// for bit — and so must `off` — with nothing re-blessed. Both modes run
/// in this one test because the switch is a process-global env var.
#[test]
fn goldens_hold_under_both_batch_modes() {
    let saved = std::env::var("LONGLOOK_BATCH").ok();
    for mode in ["on", "off"] {
        std::env::set_var("LONGLOOK_BATCH", mode);
        check(
            "GOLDEN_QUIC_CLEAN",
            &ProtoConfig::Quic(QuicConfig::default()),
            &clean_scenario(),
            GOLDEN_QUIC_CLEAN,
        );
        check(
            "GOLDEN_QUIC_LOSSY",
            &ProtoConfig::Quic(QuicConfig::default()),
            &lossy_scenario(),
            GOLDEN_QUIC_LOSSY,
        );
        check(
            "GOLDEN_TCP_CLEAN",
            &ProtoConfig::Tcp(TcpConfig::default()),
            &clean_scenario(),
            GOLDEN_TCP_CLEAN,
        );
        check(
            "GOLDEN_TCP_LOSSY",
            &ProtoConfig::Tcp(TcpConfig::default()),
            &lossy_scenario(),
            GOLDEN_TCP_LOSSY,
        );
    }
    match saved {
        Some(v) => std::env::set_var("LONGLOOK_BATCH", v),
        None => std::env::remove_var("LONGLOOK_BATCH"),
    }
}

#[test]
fn quic_clean_matches_golden() {
    check(
        "GOLDEN_QUIC_CLEAN",
        &ProtoConfig::Quic(QuicConfig::default()),
        &clean_scenario(),
        GOLDEN_QUIC_CLEAN,
    );
}

#[test]
fn quic_lossy_matches_golden() {
    check(
        "GOLDEN_QUIC_LOSSY",
        &ProtoConfig::Quic(QuicConfig::default()),
        &lossy_scenario(),
        GOLDEN_QUIC_LOSSY,
    );
}

#[test]
fn tcp_clean_matches_golden() {
    check(
        "GOLDEN_TCP_CLEAN",
        &ProtoConfig::Tcp(TcpConfig::default()),
        &clean_scenario(),
        GOLDEN_TCP_CLEAN,
    );
}

#[test]
fn tcp_lossy_matches_golden() {
    check(
        "GOLDEN_TCP_LOSSY",
        &ProtoConfig::Tcp(TcpConfig::default()),
        &lossy_scenario(),
        GOLDEN_TCP_LOSSY,
    );
}
