//! Fleet determinism suite: the 10^5-connection worlds obey the same
//! shard-invariance contract as every other experiment.
//!
//! The claim under test: a fleet cell is a pure function of its
//! `FleetConfig` — every random draw is a pure hash of (seed, entity
//! key), never a shared RNG stream — so `run_fleet` is bit-repeatable,
//! and the fleet heatmap is field-for-field identical whether its cells
//! run serially, on 4 worker threads, or at the auto-detected width
//! (i.e. across `LONGLOOK_JOBS={1,4,...}`). A final test pins the
//! tentpole memory budget: a 10k flash crowd completes with the arena
//! far under the 650 bytes-per-connection acceptance bar.

use longlook_core::prelude::*;

fn quic() -> ProtoConfig {
    ProtoConfig::Quic(QuicConfig::default())
}

fn tcp() -> ProtoConfig {
    ProtoConfig::Tcp(TcpConfig::default())
}

/// Same config, same process, repeated runs: every `FleetMetrics` field
/// — streamed moments, sketch buckets, event counts, arena peaks — is
/// bit-identical. This is the foundation the heatmap invariance builds
/// on.
#[test]
fn run_fleet_is_bit_repeatable() {
    for profile in [
        ArrivalProfile::Poisson,
        ArrivalProfile::FlashCrowd,
        ArrivalProfile::DiurnalRamp,
    ] {
        let cfg = FleetConfig::new(500).with_profile(profile);
        for proto in [quic(), tcp()] {
            let a = run_fleet(&proto, &cfg);
            let b = run_fleet(&proto, &cfg);
            assert_eq!(a, b, "fleet diverged on repeat: {profile:?} / {proto:?}");
        }
    }
}

/// Distinct seeds must actually change the world — otherwise the
/// repeatability test above would pass vacuously.
#[test]
fn seeds_produce_distinct_fleets() {
    let base = FleetConfig::new(500);
    let a = run_fleet(&quic(), &base);
    let b = run_fleet(&quic(), &base.clone().with_seed(0xDEAD_BEEF));
    assert_ne!(a.latency_ms, b.latency_ms, "seed had no effect");
}

/// The fleet heatmap — arrival profiles x load, QUIC vs TCP, Welch-gated
/// — is field-for-field identical across Serial, Threads(4), and the
/// auto-detected parallelism. This is the acceptance criterion "fleet
/// experiment bit-identical across LONGLOOK_JOBS={1,4}" exercised
/// without touching the environment (env mutation races parallel
/// tests); `Parallelism` is exactly what `LONGLOOK_JOBS` resolves to.
#[test]
fn fleet_heatmap_serial_equals_threads4_equals_auto() {
    let base = FleetConfig::new(250);
    let q = QuicConfig::default();
    let t = TcpConfig::default();
    let serial = fleet_heatmap(&q, &t, &base, 2, Parallelism::Serial);
    let par4 = fleet_heatmap(&q, &t, &base, 2, Parallelism::Threads(4));
    let auto = fleet_heatmap(&q, &t, &base, 2, Parallelism::auto());

    assert_eq!(serial.row_labels, par4.row_labels);
    assert_eq!(serial.col_labels, par4.col_labels);
    for (r, (srow, prow)) in serial.cells.iter().zip(&par4.cells).enumerate() {
        for (c, (s, p)) in srow.iter().zip(prow).enumerate() {
            assert_eq!(s, p, "cell ({r},{c}) diverged serial vs 4 threads");
        }
    }
    for (r, (srow, arow)) in serial.cells.iter().zip(&auto.cells).enumerate() {
        for (c, (s, a)) in srow.iter().zip(arow).enumerate() {
            assert_eq!(s, a, "cell ({r},{c}) diverged serial vs auto");
        }
    }
}

/// Tentpole budget check at an integration-worthy scale: a 10k-client
/// flash crowd runs to completion with the struct-of-arrays arena far
/// under the 650 B/connection acceptance bar, and the population is
/// fully accounted for (completed + timed out == spawned).
#[test]
fn flash_crowd_10k_fits_connection_budget() {
    let cfg = FleetConfig::new(10_000);
    let m = run_fleet(&quic(), &cfg);
    assert_eq!(m.completed + m.timed_out, 10_000, "clients unaccounted for");
    assert!(
        m.completed as f64 >= 0.90 * 10_000.0,
        "only {} of 10k completed",
        m.completed
    );
    assert!(
        m.bytes_per_conn() <= 650.0,
        "arena cost {:.0} B/conn exceeds the 650 B budget",
        m.bytes_per_conn()
    );
    // The latency stream and the sketch must agree on the sample count:
    // both are fed once per completion, nothing retained per-sample.
    assert_eq!(m.latency_sketch.count(), m.completed);
    // Stale-deadline tombstones are bounded, not silent: every completed
    // connection leaves exactly one Deadline event in the queue that pops
    // after the slot was freed and is generation-rejected. A higher count
    // would mean the queue is bloating with duplicates; a lower one would
    // mean deadlines are being double-consumed.
    assert_eq!(
        m.stale_deadline_pops, m.completed,
        "tombstone pops must equal completions"
    );
}
