//! Sharded-fleet differential referee: splitting one fleet cell across
//! shards (and across worker threads) must not change what it measures.
//!
//! The contract under test, from `longlook_core::fleet::world`:
//!
//! * **Across shard counts** — `shards=1` serial, `shards=S` serial, and
//!   `shards=S` threaded produce bit-identical [`FleetObservables`]
//!   (events, completions, timeouts, tombstones, the latency Summary and
//!   sketch, finish time) for every `S`. Connections interact only
//!   through their bottleneck link, links partition contiguously across
//!   shards, and no draw keys on execution-dependent state, so each
//!   link's event subsequence is sharding-invariant and the pinned-order
//!   merge reassembles exactly what one big loop would have produced.
//! * **Across thread counts at fixed shards** — the *full*
//!   [`FleetMetrics`], capacity diagnostics included, are bit-identical
//!   between the serial queue-reuse path and the threaded fan-out: the
//!   same shards run either way, only the schedule differs.
//!
//! Capacity peaks (`scheduled_peak`, `peak_live`, `arena_bytes_peak`)
//! are deliberately *outside* the first contract: they are per-shard
//! peaks summed in shard order, and four quarter-fleet peaks taken at
//! different instants legitimately sum higher than one global peak.

use longlook_core::prelude::*;

fn quic() -> ProtoConfig {
    ProtoConfig::Quic(QuicConfig::default())
}

fn tcp() -> ProtoConfig {
    ProtoConfig::Tcp(TcpConfig::default())
}

/// Shard counts exercised against the serial baseline. The referee's
/// fleet (FleetConfig::new(1500) → 4 links by default) covers divisible
/// (2, 4) and oversized (9 → clamped to 4) splits.
const SHARD_COUNTS: [usize; 3] = [2, 4, 9];

/// The headline differential: observables are bit-identical across
/// shard counts and thread counts, for both protocols and all three
/// arrival profiles.
#[test]
fn sharded_observables_match_serial_bitwise() {
    for profile in [
        ArrivalProfile::Poisson,
        ArrivalProfile::FlashCrowd,
        ArrivalProfile::DiurnalRamp,
    ] {
        let cfg = FleetConfig::new(1_500).with_profile(profile);
        for proto in [quic(), tcp()] {
            let baseline = run_fleet(&proto, &cfg);
            for shards in SHARD_COUNTS {
                let serial = run_fleet_sharded(&proto, &cfg, shards, Parallelism::Serial);
                assert_eq!(
                    baseline.observables(),
                    serial.observables(),
                    "shards={shards} serial diverged from unsharded: {profile:?} / {proto:?}"
                );
                for jobs in [2, 4] {
                    let threaded =
                        run_fleet_sharded(&proto, &cfg, shards, Parallelism::Threads(jobs));
                    // At a fixed shard count, serial vs threaded is the
                    // *same* computation on a different schedule: the
                    // full metrics — capacity diagnostics included —
                    // must match field for field.
                    assert_eq!(
                        serial, threaded,
                        "shards={shards} jobs={jobs} diverged from serial shards: \
                         {profile:?} / {proto:?}"
                    );
                }
            }
        }
    }
}

/// Non-divisible splits: a fleet whose link count is not a multiple of
/// the shard count (here 5 links over 2 and 3 shards) still merges to
/// the serial baseline bit-for-bit.
#[test]
fn non_divisible_link_count_still_merges_exactly() {
    let mut cfg = FleetConfig::new(2_000);
    cfg.n_links = 5;
    cfg.n_servers = 2;
    let baseline = run_fleet(&quic(), &cfg);
    for shards in [2, 3, 5] {
        let plan = ShardPlan::new(cfg.n_links, shards);
        assert_eq!(plan.shards(), shards.min(cfg.n_links));
        let m = run_fleet_sharded(&quic(), &cfg, shards, Parallelism::Threads(3));
        assert_eq!(
            baseline.observables(),
            m.observables(),
            "5 links over {shards} shards diverged"
        );
    }
}

/// Fewer connections than links: some shards own links that never see a
/// client. Their loops are empty, the merge still balances.
#[test]
fn shards_with_idle_links_are_benign() {
    let mut cfg = FleetConfig::new(3);
    cfg.n_links = 8;
    cfg.n_servers = 2;
    let baseline = run_fleet(&quic(), &cfg);
    let m = run_fleet_sharded(&quic(), &cfg, 8, Parallelism::Threads(4));
    assert_eq!(baseline.observables(), m.observables());
    assert_eq!(m.completed + m.timed_out, 3);
}

/// Population accounting holds in every mode: completed + timed_out
/// covers every spawned client, the latency feeds agree on the sample
/// count, and each completion leaves exactly one deadline tombstone.
#[test]
fn population_accounting_is_exact_in_every_mode() {
    let cfg = FleetConfig::new(1_500);
    for (shards, par) in [
        (1, Parallelism::Serial),
        (4, Parallelism::Serial),
        (4, Parallelism::Threads(4)),
    ] {
        let m = run_fleet_sharded(&quic(), &cfg, shards, par);
        assert_eq!(
            m.completed + m.timed_out,
            1_500,
            "clients unaccounted for at shards={shards}"
        );
        assert_eq!(m.latency_sketch.count(), m.completed);
        assert_eq!(m.latency_ms.count(), m.completed);
        assert_eq!(
            m.stale_deadline_pops, m.completed,
            "tombstone pops must equal completions at shards={shards}"
        );
    }
}

/// The CI shard matrix drives this binary with `LONGLOOK_FLEET_SHARDS`
/// ∈ {1, 4}: resolve the knob the way an experiment would and check the
/// env-selected shard count against the serial baseline, so the matrix
/// actually varies the code path under test.
#[test]
fn env_resolved_shard_count_matches_serial() {
    let shards = fleet_shards(4);
    let cfg = FleetConfig::new(fleet_n(1_500).min(20_000));
    let baseline = run_fleet(&quic(), &cfg);
    let m = run_fleet_sharded(&quic(), &cfg, shards, Parallelism::auto());
    assert_eq!(
        baseline.observables(),
        m.observables(),
        "env-resolved shards={shards} diverged from serial"
    );
}

/// `ShardPlan` unit geometry at integration scope: ranges partition the
/// link space contiguously in order, stay balanced within one link, and
/// degenerate inputs clamp instead of panicking.
#[test]
fn shard_plan_geometry() {
    for (n_links, shards) in [(4, 2), (5, 3), (7, 7), (1, 4), (12, 5)] {
        let plan = ShardPlan::new(n_links, shards);
        let mut next = 0;
        for s in 0..plan.shards() {
            let r = plan.link_range(s);
            assert_eq!(r.start, next, "gap before shard {s} of {plan:?}");
            assert!(!r.is_empty());
            next = r.end;
        }
        assert_eq!(next, n_links, "{plan:?} did not cover the link space");
    }
    assert_eq!(ShardPlan::new(6, 0).shards(), 1);
    assert_eq!(ShardPlan::new(0, 3).shards(), 1);
}
