//! Integration tests for the trace -> state-machine inference pipeline
//! (the paper's root-cause instrument), including property-based checks
//! on the inference invariants.

use longlook_core::prelude::*;
use longlook_core::rootcause::infer_from_records;
use longlook_sim::time::Time as STime;
use longlook_statemachine::{holds, infer, Trace};
use proptest::prelude::*;

#[test]
fn cubic_machine_covers_expected_states_under_stress() {
    let quic = ProtoConfig::Quic(QuicConfig::default());
    let mut records = Vec::new();
    // Clean, lossy, and jittery runs to visit many states.
    for (seed, net) in [
        (1u64, NetProfile::baseline(10.0)),
        (2, NetProfile::baseline(100.0).with_loss(0.01)),
        (
            3,
            NetProfile::baseline(50.0)
                .with_extra_rtt(Dur::from_millis(76))
                .with_jitter(Dur::from_millis(10)),
        ),
    ] {
        let sc = Scenario::new(net, PageSpec::single(3 * 1024 * 1024))
            .with_rounds(2)
            .with_seed(seed);
        records.extend(run_records(&quic, &sc));
    }
    let m = infer_from_records(&records);
    for expected in ["Init", "SlowStart", "CongestionAvoidance", "Recovery"] {
        assert!(
            m.states.iter().any(|s| s == expected),
            "missing state {expected}: {:?}",
            m.states
        );
    }
    // Init always precedes SlowStart.
    assert!(m
        .invariants
        .iter()
        .any(|i| i.to_string() == "Init AlwaysPrecedes SlowStart"));
    // Probabilities out of each state sum to ~1.
    for s in &m.states {
        let total: f64 = m
            .successors(s)
            .iter()
            .map(|(t, _)| m.transition_probability(s, t))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "{s}: {total}");
    }
}

#[test]
fn bbr_machine_uses_bbr_states_only() {
    let cfg = QuicConfig {
        cc: CcKind::Bbr,
        ..QuicConfig::default()
    };
    let sc = Scenario::new(
        NetProfile::baseline(20.0),
        PageSpec::single(10 * 1024 * 1024),
    )
    .with_rounds(2);
    let records = run_records(&ProtoConfig::Quic(cfg), &sc);
    let m = infer_from_records(&records);
    for s in &m.states {
        assert!(
            ["Startup", "Drain", "ProbeBW", "ProbeRTT"].contains(&s.as_str()),
            "unexpected BBR state {s}"
        );
    }
    assert!(m.states.iter().any(|s| s == "Startup"));
}

#[test]
fn motog_is_application_limited_far_more_than_desktop() {
    let quic = ProtoConfig::Quic(QuicConfig::default());
    let page = PageSpec::single(10 * 1024 * 1024);
    let desktop = {
        let sc = Scenario::new(NetProfile::baseline(50.0), page.clone()).with_rounds(2);
        infer_from_records(&run_records(&quic, &sc))
    };
    let motog = {
        let sc = Scenario::new(NetProfile::baseline(50.0), page)
            .with_rounds(2)
            .on_device(DeviceProfile::MOTOG);
        infer_from_records(&run_records(&quic, &sc))
    };
    let d = desktop.time_fraction("ApplicationLimited");
    let m = motog.time_fraction("ApplicationLimited");
    assert!(
        m > d + 0.2,
        "MotoG app-limited {:.0}% must far exceed desktop {:.0}% (paper: 58% vs 7%)",
        m * 100.0,
        d * 100.0
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mined invariants always hold on the traces they were mined from.
    #[test]
    fn mined_invariants_hold_on_inputs(
        traces in proptest::collection::vec(
            proptest::collection::vec(0usize..5, 1..12),
            1..6,
        )
    ) {
        let labels = ["A", "B", "C", "D", "E"];
        let traces: Vec<Trace> = traces
            .iter()
            .map(|seq| {
                let visits: Vec<(STime, String)> = seq
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        (
                            STime::ZERO + Dur::from_millis(i as u64 * 10),
                            labels[s].to_string(),
                        )
                    })
                    .collect();
                Trace::new(visits, STime::ZERO + Dur::from_millis(seq.len() as u64 * 10))
            })
            .collect();
        let machine = infer(&traces);
        for inv in &machine.invariants {
            for tr in &traces {
                prop_assert!(holds(inv, tr), "{inv} violated");
            }
        }
        // Time fractions sum to ~1 when there is any dwell time.
        let total: f64 = machine
            .states
            .iter()
            .map(|s| machine.time_fraction(s))
            .sum();
        prop_assert!(total <= 1.0 + 1e-9);
    }

    /// Transition counts equal the number of adjacent pairs plus
    /// INITIAL/TERMINAL edges.
    #[test]
    fn transition_counts_are_consistent(
        seq in proptest::collection::vec(0usize..3, 1..20)
    ) {
        let labels = ["X", "Y", "Z"];
        let visits: Vec<(STime, String)> = seq
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                (
                    STime::ZERO + Dur::from_millis(i as u64),
                    labels[s].to_string(),
                )
            })
            .collect();
        let trace = Trace::new(visits, STime::ZERO + Dur::from_millis(seq.len() as u64));
        let machine = infer(std::slice::from_ref(&trace));
        let total: u64 = machine.transitions.values().sum();
        // n-1 internal edges + INITIAL edge + TERMINAL edge.
        prop_assert_eq!(total, seq.len() as u64 + 1);
    }
}
