//! Trace-layer differential referee: `LONGLOOK_TRACE=on` vs `off`.
//!
//! The structured trace layer observes the transports; it must never
//! steer them. Every emit point sits after the decision it records, the
//! tracer draws no randomness, and the TimerArm deadline is computed by
//! the same pure function the deferred re-arm resolves — so switching
//! tracing on must leave every observable bit unchanged:
//!
//! * bit-identical `RunRecord`s and `StateTrace`s over clean / lossy /
//!   jittered cells for both protocols;
//! * identical `TraumaRecord`s on a faulted cell (a blackout splitting
//!   the transfer);
//! * identical event counts and scheduler high-water marks on a bulk
//!   transfer;
//! * all of the above regardless of the runner's parallelism (Serial
//!   and Threads(4) shard the same cells).
//!
//! Everything runs inside ONE `#[test]` because the A/B switch is the
//! `LONGLOOK_TRACE` environment variable, which is process-global: two
//! tests flipping it concurrently in the same binary would race.

use longlook_core::prelude::*;
use longlook_transport::conn::ConnStats;

/// Run `f` with `LONGLOOK_TRACE` set to `mode`, restoring the prior
/// value afterwards.
fn with_trace<T>(mode: &str, f: impl FnOnce() -> T) -> T {
    let saved = std::env::var("LONGLOOK_TRACE").ok();
    std::env::set_var("LONGLOOK_TRACE", mode);
    let out = f();
    match saved {
        Some(v) => std::env::set_var("LONGLOOK_TRACE", v),
        None => std::env::remove_var("LONGLOOK_TRACE"),
    }
    out
}

/// Exhaustive deterministic rendering of a record set — every counter,
/// the full state trace, and the complete cwnd timeline as exact
/// integers, so equality is bit-for-bit.
fn render(records: &[RunRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let stats_line = |s: &ConnStats| {
        format!(
            "sent={} recv={} bytes_out={} bytes_in={} acked={} rexmit={} spurious={} \
             losses={} rto={} tlp={} acks={} max_cwnd={}",
            s.packets_sent,
            s.packets_received,
            s.bytes_sent,
            s.bytes_received,
            s.bytes_acked,
            s.retransmissions,
            s.spurious_retransmissions,
            s.losses_detected,
            s.rto_count,
            s.tlp_count,
            s.acks_sent,
            s.max_cwnd,
        )
    };
    for (k, r) in records.iter().enumerate() {
        let _ = writeln!(
            out,
            "round {k}: plt_ns={} ended_ns={}",
            r.plt
                .map_or_else(|| "none".into(), |d| d.as_nanos().to_string()),
            r.ended_at.as_nanos(),
        );
        let _ = writeln!(out, "  client {}", stats_line(&r.client_stats));
        if let Some(s) = &r.server_stats {
            let _ = writeln!(out, "  server {}", stats_line(s));
        }
        if let Some(t) = &r.server_trace {
            let _ = writeln!(
                out,
                "  trace={} span_ns={}",
                t.labels().join(">"),
                t.span.as_nanos()
            );
        }
        for &(t, w) in &r.server_cwnd {
            let _ = writeln!(out, "  cwnd {} {}", t.as_nanos(), w);
        }
    }
    out
}

fn scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "clean",
            Scenario::new(NetProfile::baseline(10.0), PageSpec::single(40 * 1024))
                .with_rounds(2)
                .with_seed(9501),
        ),
        (
            "lossy",
            Scenario::new(
                NetProfile::baseline(5.0).with_loss(0.02),
                PageSpec::single(80 * 1024),
            )
            .with_rounds(2)
            .with_seed(9502),
        ),
        (
            "jittered",
            Scenario::new(
                NetProfile::baseline(20.0).with_jitter(Dur::from_millis(4)),
                PageSpec::uniform(5, 20 * 1024),
            )
            .with_rounds(2)
            .with_seed(9503),
        ),
    ]
}

/// A blackout opening mid-transfer: losses, an RTO storm, and a recovery
/// — the densest emit schedule the trace layer has.
fn faulted_scenario() -> Scenario {
    let plan = FaultPlan::new().with_event(FaultEvent {
        at: Time::ZERO + Dur::from_millis(30),
        dur: Dur::from_millis(80),
        dir: FaultDir::Both,
        kind: FaultKind::Blackout,
    });
    Scenario::new(
        NetProfile::baseline(5.0).with_fault(plan),
        PageSpec::single(120 * 1024),
    )
    .with_rounds(1)
    .with_seed(9504)
}

/// One bulk page load; returns (events_processed, scheduled_peak).
fn bulk_cell(proto: &ProtoConfig) -> (u64, u64) {
    let net = NetProfile::baseline(20.0);
    let page = PageSpec::single(2 * 1024 * 1024);
    let mut tb = Testbed::direct(
        9599,
        &net,
        DeviceProfile::DESKTOP,
        page.clone(),
        vec![FlowSpec {
            proto: proto.clone(),
            zero_rtt: false,
            app: Box::new(WebClient::new(page)),
        }],
        None,
        true,
    );
    tb.run(Dur::from_secs(120));
    (tb.world.events_processed(), tb.world.scheduled_peak())
}

#[test]
fn tracing_on_and_off_are_observationally_identical() {
    let protos = [
        ("quic", ProtoConfig::Quic(QuicConfig::default())),
        ("tcp", ProtoConfig::Tcp(TcpConfig::default())),
    ];

    // Sanity first: the "on" arm must not be vacuously identical — a run
    // with tracing enabled actually records events.
    let (_, traced) = with_trace("off", || {
        // run_trauma_cell_traced pins LONGLOOK_TRACE=on internally and
        // restores the prior value; calling it under "off" also proves
        // the restore.
        longlook_core::trauma::run_trauma_cell_traced(&protos[0].1, &faulted_scenario(), 0)
    });
    assert!(
        traced.len() > 10,
        "traced run recorded only {} events",
        traced.len()
    );
    assert_eq!(std::env::var("LONGLOOK_TRACE").ok(), None);

    // Full RunRecord + StateTrace equality over clean / lossy / jittered
    // cells, under both runner parallelism modes.
    for par in [Parallelism::Serial, Parallelism::Threads(4)] {
        for (proto_name, proto) in &protos {
            for (sc_name, sc) in scenarios() {
                let on = with_trace("on", || render(&run_records_par(proto, &sc, par)));
                let off = with_trace("off", || render(&run_records_par(proto, &sc, par)));
                assert_eq!(
                    on, off,
                    "{proto_name}/{sc_name}/{par:?}: RunRecords diverged between \
                     trace-on and trace-off"
                );
            }
        }
    }

    // Faulted cell: the full TraumaRecord (outcome, typed errors,
    // app-level bytes, record) must match field for field.
    for (proto_name, proto) in &protos {
        let sc = faulted_scenario();
        let on = with_trace("on", || run_trauma_cell(proto, &sc, 0));
        let off = with_trace("off", || run_trauma_cell(proto, &sc, 0));
        assert_eq!(
            on, off,
            "{proto_name}/blackout: TraumaRecord diverged between trace-on \
             and trace-off"
        );
    }

    // Event-loop accounting equality on a bulk transfer: tracing draws no
    // randomness and schedules nothing, so counts and the scheduler
    // high-water mark match exactly.
    for (proto_name, proto) in &protos {
        let (ev_on, peak_on) = with_trace("on", || bulk_cell(proto));
        let (ev_off, peak_off) = with_trace("off", || bulk_cell(proto));
        assert_eq!(ev_on, ev_off, "{proto_name}: events_processed diverged");
        assert_eq!(peak_on, peak_off, "{proto_name}: scheduled_peak diverged");
        assert!(ev_on > 1_000, "{proto_name}: bulk cell suspiciously small");
    }
}
