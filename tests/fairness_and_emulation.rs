//! Integration tests for the fairness instrumentation and the fidelity of
//! the link emulation (Table 5-style characterization).

use longlook_core::prelude::*;
use longlook_sim::link::{LinkDir, Verdict};
use longlook_sim::SimRng;

#[test]
fn table4_shape_quic_takes_about_double() {
    let quic = ProtoConfig::Quic(QuicConfig::default());
    let tcp = ProtoConfig::Tcp(TcpConfig::default());
    let run = quic_vs_n_tcp(&quic, &tcp, 1, Dur::from_secs(45), 5);
    let ratio = run.flows[0].mean_mbps / run.flows[1].mean_mbps.max(1e-9);
    assert!(
        ratio > 1.3 && ratio < 4.0,
        "paper: 2.71/1.62 = 1.67x; got {ratio:.2}x"
    );
}

#[test]
fn quic_majority_share_against_multiple_tcp_flows() {
    let quic = ProtoConfig::Quic(QuicConfig::default());
    let tcp = ProtoConfig::Tcp(TcpConfig::default());
    for n in [2usize, 4] {
        let run = quic_vs_n_tcp(&quic, &tcp, n, Dur::from_secs(45), 6);
        let quic_mbps = run.flows[0].mean_mbps;
        let total: f64 = run.flows.iter().map(|f| f.mean_mbps).sum();
        let share = quic_mbps / total;
        let fair = 1.0 / (n as f64 + 1.0);
        // Paper: QUIC holds >50% even against 2-4 TCP flows. Our model
        // reproduces the unfairness direction at ~1.4-1.7x the fair share
        // (see EXPERIMENTS.md for the calibration notes).
        assert!(
            share > 1.35 * fair,
            "vs {n} TCP flows QUIC share {share:.2} should far exceed fair {fair:.2}"
        );
    }
}

#[test]
fn same_protocol_flows_are_fair() {
    let quic = ProtoConfig::Quic(QuicConfig::default());
    let run = run_fairness(
        &[("A".to_string(), quic.clone()), ("B".to_string(), quic)],
        &fairness_net(),
        Dur::from_secs(45),
        7,
    );
    let ratio = run.flows[0].mean_mbps / run.flows[1].mean_mbps.max(1e-9);
    assert!((0.5..2.0).contains(&ratio), "ratio = {ratio:.2}");
}

#[test]
fn emulated_cellular_profiles_match_their_targets() {
    for p in CELL_PROFILES {
        let net = p.net_profile();
        let mut link = LinkDir::new(net.link(), SimRng::new(3));
        let gap_ns = (1200.0 * 8.0 / (p.throughput_mbps * 1e6) * 1e9) as u64;
        let mut delivered = 0u64;
        for k in 0..20_000u64 {
            let t = Time::ZERO + Dur::from_nanos(k * gap_ns);
            if matches!(link.transit(t, 1200), Verdict::DeliverAt(_)) {
                delivered += 1;
            }
        }
        assert!(delivered > 15_000);
        let st = link.stats();
        // Reordering within 2x of the target (Bernoulli noise).
        if p.reordering > 0.0 {
            let r = st.reorder_rate();
            assert!(
                r > p.reordering * 0.4 && r < p.reordering * 2.5,
                "{}: reorder {r:.4} vs target {:.4}",
                p.name,
                p.reordering
            );
        }
        // Loss close to target.
        let l = st.loss_rate();
        assert!(
            l <= p.loss * 3.0 + 0.001,
            "{}: loss {l:.4} vs target {:.4}",
            p.name,
            p.loss
        );
    }
}

#[test]
fn variable_bandwidth_favors_quic() {
    // Fig 11's shape at integration-test scale.
    use longlook_core::testbed::{FlowSpec, Testbed};
    let mut means = Vec::new();
    for proto in [
        ProtoConfig::Quic(QuicConfig::default()),
        ProtoConfig::Tcp(TcpConfig::default()),
    ] {
        // Home-router-sized buffer: rate down-shifts overflow it, and
        // recovery speed separates the protocols (paper: 79 vs 46 Mbps).
        let mut net = NetProfile::baseline(100.0).with_buffer(100 * 1024);
        net.rate = RateSchedule::random_hold_mbps(50.0, 150.0, Dur::from_secs(1), 44);
        let mut tb = Testbed::direct(
            44,
            &net,
            DeviceProfile::DESKTOP,
            PageSpec::single(210 * 1024 * 1024),
            vec![FlowSpec {
                proto,
                zero_rtt: true,
                app: Box::new(BulkClient::new(0, Dur::from_secs(1))),
            }],
            None,
            false,
        );
        tb.world.run_until(Time::ZERO + Dur::from_secs(15));
        let app = tb.client_host().app::<BulkClient>(0);
        let tl = app.throughput_mbps();
        let steady = &tl[2.min(tl.len())..];
        means.push(steady.iter().sum::<f64>() / steady.len().max(1) as f64);
    }
    assert!(
        means[0] > means[1],
        "QUIC {:.0} Mbps should beat TCP {:.0} Mbps under fluctuating bandwidth",
        means[0],
        means[1]
    );
}

#[test]
fn fairness_results_are_deterministic() {
    let quic = ProtoConfig::Quic(QuicConfig::default());
    let tcp = ProtoConfig::Tcp(TcpConfig::default());
    let a = quic_vs_n_tcp(&quic, &tcp, 1, Dur::from_secs(20), 9);
    let b = quic_vs_n_tcp(&quic, &tcp, 1, Dur::from_secs(20), 9);
    assert_eq!(a.flows[0].timeline_mbps, b.flows[0].timeline_mbps);
    assert_eq!(a.flows[1].timeline_mbps, b.flows[1].timeline_mbps);
}
