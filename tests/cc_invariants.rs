//! Congestion-control state-machine invariants (paper Fig 3a/3b, Table 3).
//!
//! Every inferred trace the Cubic and BBR experiments produce must stay
//! inside the paper's legal transition graph, and the loss-recovery
//! states must never be entered without loss evidence in the same run's
//! counters. This is simulation-level invariant checking in the spirit of
//! "State machine inference of QUIC" (Rasool et al.): end-to-end PLT
//! diffs can stay plausible while the state machine silently goes wrong,
//! so the machine itself is pinned here.

use longlook_core::prelude::*;
use longlook_transport::ccstate::{bbr_legal_edges, check_trace_legal, cubic_legal_edges};
use std::collections::BTreeSet;

/// Scenarios spanning the regimes that reach every state family: clean
/// links (ApplicationLimited), heavy loss (Recovery), long-RTT tail-heavy
/// pages (TailLossProbe), and a fast link for the app-limited extremes.
fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(NetProfile::baseline(10.0), PageSpec::single(50 * 1024))
            .with_rounds(4)
            .with_seed(8101),
        Scenario::new(
            NetProfile::baseline(20.0).with_loss(0.02),
            PageSpec::single(300 * 1024),
        )
        .with_rounds(4)
        .with_seed(8102),
        Scenario::new(
            NetProfile::baseline(1.0).with_loss(0.05),
            PageSpec::single(100 * 1024),
        )
        .with_rounds(4)
        .with_seed(8103),
        Scenario::new(
            NetProfile::baseline(5.0)
                .with_extra_rtt(Dur::from_millis(100))
                .with_loss(0.01),
            PageSpec::uniform(8, 6 * 1024),
        )
        .with_rounds(4)
        .with_seed(8104),
        Scenario::new(NetProfile::baseline(100.0), PageSpec::single(10 * 1024))
            .with_rounds(4)
            .with_seed(8105),
    ]
}

fn quic_with(cc: CcKind) -> ProtoConfig {
    ProtoConfig::Quic(QuicConfig {
        cc,
        ..QuicConfig::default()
    })
}

fn records_for(cc: CcKind) -> Vec<RunRecord> {
    let proto = quic_with(cc);
    scenarios()
        .iter()
        .flat_map(|sc| run_records(&proto, sc))
        .collect()
}

fn assert_trace_legal(
    records: &[RunRecord],
    legal: &BTreeSet<(&'static str, &'static str)>,
    initial: &str,
    cc: CcKind,
) {
    let mut traces = 0;
    for (k, rec) in records.iter().enumerate() {
        let trace = rec
            .server_trace
            .as_ref()
            .unwrap_or_else(|| panic!("{cc:?} record {k} lost its server trace"));
        if let Err(msg) = check_trace_legal(&trace.labels(), legal, initial) {
            panic!("{cc:?} record {k}: {msg}");
        }
        traces += 1;
    }
    assert!(traces > 0, "{cc:?}: no traces collected");
}

/// All Cubic transitions across the scenario battery are edges of the
/// legal graph, every trace starts in Init, and Init is never re-entered.
#[test]
fn cubic_traces_stay_inside_legal_graph() {
    assert_trace_legal(
        &records_for(CcKind::Cubic),
        &cubic_legal_edges(),
        "Init",
        CcKind::Cubic,
    );
}

/// Same for BBR against its exact four-edge graph, starting in Startup.
#[test]
fn bbr_traces_stay_inside_legal_graph() {
    assert_trace_legal(
        &records_for(CcKind::Bbr),
        &bbr_legal_edges(),
        "Startup",
        CcKind::Bbr,
    );
}

/// Recovery-family states require loss evidence in the same run's server
/// counters: a trace visiting Recovery needs `losses_detected > 0`, an
/// RTO visit needs `rto_count > 0`, a TLP visit needs `tlp_count > 0`.
/// (Counters are per-connection aggregates, the finest evidence the
/// record keeps — a visit with a zero counter would mean the state was
/// entered with *no* loss signal anywhere in the connection's lifetime.)
#[test]
fn recovery_states_require_loss_evidence() {
    for cc in [CcKind::Cubic, CcKind::Bbr] {
        for (k, rec) in records_for(cc).iter().enumerate() {
            let Some(trace) = &rec.server_trace else {
                continue;
            };
            let stats = rec
                .server_stats
                .as_ref()
                .unwrap_or_else(|| panic!("{cc:?} record {k} lost server stats"));
            let labels = trace.labels();
            let visited = |s: &str| labels.contains(&s);
            if visited("Recovery") {
                assert!(
                    stats.losses_detected > 0,
                    "{cc:?} record {k}: Recovery entered with zero losses detected"
                );
            }
            if visited("RetransmissionTimeout") {
                assert!(
                    stats.rto_count > 0,
                    "{cc:?} record {k}: RTO state entered but no timeout fired"
                );
            }
            if visited("TailLossProbe") {
                assert!(
                    stats.tlp_count > 0,
                    "{cc:?} record {k}: TLP state entered but no probe fired"
                );
            }
        }
    }
}

/// The loss machinery is actually exercised: at least one lossy-scenario
/// Cubic trace must visit Recovery (otherwise the three invariants above
/// would pass vacuously).
#[test]
fn battery_reaches_recovery_states() {
    let records = records_for(CcKind::Cubic);
    let visits = |state: &str| {
        records
            .iter()
            .filter_map(|r| r.server_trace.as_ref())
            .filter(|t| t.labels().contains(&state))
            .count()
    };
    assert!(visits("Recovery") > 0, "no trace ever reached Recovery");
    assert!(
        visits("ApplicationLimited") > 0,
        "no trace ever reached ApplicationLimited"
    );
}
