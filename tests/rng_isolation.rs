//! RNG isolation guard: the mechanical version of the ROADMAP's
//! "per-worker RNG audit".
//!
//! The paper's paired design only holds if every `(scenario, protocol,
//! round)` cell draws from its *own* seeded stream — a `SimRng` or
//! `World` leaked across cells silently correlates rounds and invalidates
//! the Welch gate. In debug/test builds the runner installs a
//! [`CellGuard`] around each cell and every tagged object panics the
//! moment it is touched from a second cell, naming both cells. Release
//! builds compile the whole check away.

use longlook_core::runner::{run_ordered, Parallelism};
use longlook_sim::{current_cell, CellGuard, CellId, SimRng};

/// Legal use — each cell builds its own `SimRng` from its derived seed —
/// passes untouched under every parallelism level, and stays bit-identical
/// across them.
#[test]
fn per_cell_rngs_pass_the_guard() {
    let work = |i: usize| {
        let mut rng = SimRng::new(0x5EED_0000 + i as u64);
        (0..100)
            .map(|_| rng.next_u64())
            .fold(0u64, u64::wrapping_add)
    };
    let serial = run_ordered(Parallelism::Serial, 32, work);
    let par = run_ordered(Parallelism::Threads(4), 32, work);
    assert_eq!(serial, par);
}

/// Untagged use outside any cell scope (plain unit tests, ad-hoc tools)
/// is never policed: the guard only has an opinion when the runner has
/// declared cell boundaries.
#[test]
fn rng_outside_cells_is_unpoliced() {
    assert_eq!(current_cell(), None);
    let mut rng = SimRng::new(99);
    let a = rng.next_u64();
    let b = rng.next_u64();
    assert_ne!(a, b);
}

/// The deliberate violation: one `SimRng` shared (behind a mutex, so the
/// sharing itself is data-race-free — the *statistical* sharing is the
/// bug) across all cells of a batch. Debug builds must panic naming the
/// cell pair.
#[cfg(debug_assertions)]
#[test]
fn shared_rng_across_cells_panics_in_debug() {
    use std::sync::Mutex;
    let shared = Mutex::new(SimRng::new(42));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_ordered(Parallelism::Threads(4), 8, |_| {
            // The violation panic poisons the mutex for sibling cells;
            // shrug that off so the only panic in flight is the guard's.
            shared
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .next_u64()
        })
    }));
    let payload = result.expect_err("sharing one SimRng across cells must panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
        .unwrap_or_default();
    assert!(
        msg.contains("RNG isolation violation"),
        "unexpected panic message: {msg}"
    );
    assert!(msg.contains("cell"), "message must name the cells: {msg}");
}

/// Same violation through the serial path: the guard is exactly as strict
/// at `-j 1`, so a bug cannot hide behind a serial CI configuration.
#[cfg(debug_assertions)]
#[test]
fn shared_rng_panics_even_in_serial_mode() {
    use std::sync::Mutex;
    let shared = Mutex::new(SimRng::new(43));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_ordered(Parallelism::Serial, 4, |_| {
            shared.lock().unwrap().next_u64()
        })
    }));
    assert!(result.is_err(), "serial sharing must panic too");
}

/// A `World` leaked across cells is caught by the same tag — even one
/// `step()` from a second cell trips it. Exercised directly through the
/// guard API so the failure names this exact object, not an RNG stream.
#[cfg(debug_assertions)]
#[test]
fn world_shared_across_cells_panics_in_debug() {
    use longlook_sim::World;
    let mut w = World::new(7);
    {
        let _g = CellGuard::enter(CellId {
            batch: 900,
            index: 0,
        });
        w.step(); // first cell claims the World
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _g = CellGuard::enter(CellId {
            batch: 900,
            index: 1,
        });
        w.step();
    }));
    assert!(result.is_err(), "World reuse across cells must panic");
}

/// Forking a per-cell root RNG is legal: `fork` derives an independent
/// child stream with a fresh tag, which is exactly how `World` hands
/// streams to links and devices inside one cell.
#[test]
fn forked_streams_stay_legal_within_a_cell() {
    let sums = run_ordered(Parallelism::Threads(2), 8, |i| {
        let mut root = SimRng::new(1000 + i as u64);
        let mut child = root.fork(7);
        root.next_u64().wrapping_add(child.next_u64())
    });
    assert_eq!(sums.len(), 8);
}
