//! Scheduler differential referee: heap vs timing wheel.
//!
//! The timing wheel must be *observationally identical* to the binary
//! heap it replaced — same pop order, so same RNG draw sequence, so
//! bit-identical `RunRecord`s and event counts. The golden-seed snapshot
//! pins the wheel's behavior against history; this suite pins the wheel
//! against the heap directly, on scenarios with loss and reordering where
//! any tie-break divergence would surface immediately.
//!
//! Everything runs inside ONE `#[test]` because the A/B switch is the
//! `LONGLOOK_SCHED` environment variable, which is process-global: two
//! tests flipping it concurrently in the same test binary would race.

use longlook_core::prelude::*;

/// Run `f` with `LONGLOOK_SCHED` set to `kind`, restoring the prior
/// value afterwards.
fn with_sched<T>(kind: &str, f: impl FnOnce() -> T) -> T {
    let saved = std::env::var("LONGLOOK_SCHED").ok();
    std::env::set_var("LONGLOOK_SCHED", kind);
    let out = f();
    match saved {
        Some(v) => std::env::set_var("LONGLOOK_SCHED", v),
        None => std::env::remove_var("LONGLOOK_SCHED"),
    }
    out
}

/// Compact deterministic rendering of a record set — exact integers only,
/// so equality is bit-for-bit (same fields the golden snapshot pins).
fn render(records: &[RunRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (k, r) in records.iter().enumerate() {
        let c = &r.client_stats;
        let _ = writeln!(
            out,
            "round {k}: plt_ns={} ended_ns={} c_sent={} c_recv={} c_rexmit={} c_acks={}",
            r.plt
                .map_or_else(|| "none".into(), |d| d.as_nanos().to_string()),
            r.ended_at.as_nanos(),
            c.packets_sent,
            c.packets_received,
            c.retransmissions,
            c.acks_sent,
        );
        if let Some(s) = &r.server_stats {
            let _ = writeln!(
                out,
                "  s_sent={} s_recv={} s_bytes_out={} s_rexmit={} s_losses={} s_rto={} s_max_cwnd={}",
                s.packets_sent,
                s.packets_received,
                s.bytes_sent,
                s.retransmissions,
                s.losses_detected,
                s.rto_count,
                s.max_cwnd,
            );
        }
        if let Some(t) = &r.server_trace {
            let _ = writeln!(
                out,
                "  trace={} span_ns={}",
                t.labels().join(">"),
                t.span.as_nanos()
            );
        }
        let _ = writeln!(out, "  cwnd_points={}", r.server_cwnd.len());
    }
    out
}

fn scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "clean",
            Scenario::new(NetProfile::baseline(10.0), PageSpec::single(40 * 1024))
                .with_rounds(2)
                .with_seed(7101),
        ),
        (
            "lossy",
            Scenario::new(
                NetProfile::baseline(5.0).with_loss(0.02),
                PageSpec::single(80 * 1024),
            )
            .with_rounds(2)
            .with_seed(7102),
        ),
        (
            "jittered",
            Scenario::new(
                NetProfile::baseline(20.0).with_jitter(Dur::from_millis(4)),
                PageSpec::uniform(5, 20 * 1024),
            )
            .with_rounds(2)
            .with_seed(7103),
        ),
    ]
}

/// One bulk page load; returns (events_processed, scheduled_peak).
fn bulk_cell(proto: &ProtoConfig) -> (u64, u64) {
    let net = NetProfile::baseline(20.0);
    let page = PageSpec::single(2 * 1024 * 1024);
    let mut tb = Testbed::direct(
        7777,
        &net,
        DeviceProfile::DESKTOP,
        page.clone(),
        vec![FlowSpec {
            proto: proto.clone(),
            zero_rtt: false,
            app: Box::new(WebClient::new(page)),
        }],
        None,
        true,
    );
    tb.run(Dur::from_secs(120));
    (tb.world.events_processed(), tb.world.scheduled_peak())
}

#[test]
fn wheel_and_heap_schedulers_are_observationally_identical() {
    let protos = [
        ("quic", ProtoConfig::Quic(QuicConfig::default())),
        ("tcp", ProtoConfig::Tcp(TcpConfig::default())),
    ];

    // Full RunRecord equality over clean / lossy / jittered scenarios.
    for (proto_name, proto) in &protos {
        for (sc_name, sc) in scenarios() {
            let wheel = with_sched("wheel", || render(&run_records(proto, &sc)));
            let heap = with_sched("heap", || render(&run_records(proto, &sc)));
            assert_eq!(
                wheel, heap,
                "{proto_name}/{sc_name}: RunRecords diverged between schedulers"
            );
        }
    }

    // Event-loop accounting equality on a bulk transfer: same number of
    // events processed and the same scheduler high-water mark, since the
    // push/pop sequences must be identical.
    for (proto_name, proto) in &protos {
        let (ev_w, peak_w) = with_sched("wheel", || bulk_cell(proto));
        let (ev_h, peak_h) = with_sched("heap", || bulk_cell(proto));
        assert_eq!(ev_w, ev_h, "{proto_name}: events_processed diverged");
        assert_eq!(peak_w, peak_h, "{proto_name}: scheduled_peak diverged");
        assert!(ev_w > 1_000, "{proto_name}: bulk cell suspiciously small");
    }
}
