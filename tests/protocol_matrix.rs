//! Cross-protocol matrix: every workload x protocol combination completes
//! correctly and the byte accounting is exact.

use longlook_core::prelude::*;
use longlook_core::testbed::{FlowSpec, Testbed};
use longlook_http::RESPONSE_HEADER;

fn protocols() -> Vec<(&'static str, ProtoConfig)> {
    vec![
        ("quic-cubic", ProtoConfig::Quic(QuicConfig::default())),
        (
            "quic-bbr",
            ProtoConfig::Quic(QuicConfig {
                cc: CcKind::Bbr,
                ..QuicConfig::default()
            }),
        ),
        ("quic-37", ProtoConfig::Quic(QuicConfig::quic37())),
        ("tcp", ProtoConfig::Tcp(TcpConfig::default())),
    ]
}

fn pages() -> Vec<(&'static str, PageSpec)> {
    vec![
        ("1x5KB", PageSpec::single(5 * 1024)),
        ("1x1MB", PageSpec::single(1024 * 1024)),
        ("10x10KB", PageSpec::uniform(10, 10 * 1024)),
        ("120x10KB (beyond MSPC)", PageSpec::uniform(120, 10 * 1024)),
    ]
}

fn impairments() -> Vec<(&'static str, NetProfile)> {
    vec![
        ("clean", NetProfile::baseline(10.0)),
        ("lossy", NetProfile::baseline(10.0).with_loss(0.02)),
        (
            "jittery",
            NetProfile::baseline(10.0)
                .with_extra_rtt(Dur::from_millis(40))
                .with_jitter(Dur::from_millis(5)),
        ),
    ]
}

#[test]
fn every_combination_completes_with_exact_bytes() {
    for (pname, proto) in protocols() {
        for (gname, page) in pages() {
            for (nname, net) in impairments() {
                let mut tb = Testbed::direct(
                    7,
                    &net,
                    DeviceProfile::DESKTOP,
                    page.clone(),
                    vec![FlowSpec {
                        proto: proto.clone(),
                        zero_rtt: true,
                        app: Box::new(WebClient::new(page.clone())),
                    }],
                    None,
                    true,
                );
                tb.run(Dur::from_secs(300));
                let app = tb.client_host().app::<WebClient>(0);
                assert!(
                    app.done(),
                    "{pname} / {gname} / {nname}: page load incomplete"
                );
                for rt in app.har() {
                    assert_eq!(
                        rt.bytes,
                        page.objects[rt.object] + RESPONSE_HEADER,
                        "{pname} / {gname} / {nname}: object {} byte mismatch",
                        rt.object
                    );
                    assert!(rt.finished.is_some());
                }
            }
        }
    }
}

#[test]
fn mobile_devices_complete_all_protocols() {
    let page = PageSpec::single(1024 * 1024);
    for (pname, proto) in protocols() {
        for device in [DeviceProfile::NEXUS6, DeviceProfile::MOTOG] {
            let sc = Scenario::new(NetProfile::baseline(50.0), page.clone())
                .with_rounds(1)
                .on_device(device);
            let rec = run_page_load(&proto, &sc, 0);
            assert!(
                rec.plt.is_some(),
                "{pname} on {} did not finish",
                device.name
            );
        }
    }
}

#[test]
fn proxied_combinations_complete() {
    let page = PageSpec::uniform(5, 100 * 1024);
    let combos = [
        (
            "tcp/tcp",
            ProtoConfig::Tcp(TcpConfig::default()),
            ProtoConfig::Tcp(TcpConfig::default()),
        ),
        (
            "quic/quic",
            ProtoConfig::Quic(QuicConfig::default()),
            ProtoConfig::Quic(QuicConfig::default()),
        ),
        (
            "quic/tcp",
            ProtoConfig::Quic(QuicConfig::default()),
            ProtoConfig::Tcp(TcpConfig::default()),
        ),
    ];
    for (name, down, up) in combos {
        let sc =
            Scenario::new(NetProfile::baseline(10.0).with_loss(0.005), page.clone()).with_rounds(1);
        let plt = run_page_load_proxied(&down, &up, &sc, 0);
        assert!(plt.is_some(), "{name} proxied load incomplete");
    }
}

#[test]
fn bbr_and_cubic_both_fill_a_fat_pipe() {
    for cc in [CcKind::Cubic, CcKind::Bbr] {
        let cfg = QuicConfig {
            cc,
            ..QuicConfig::default()
        };
        let sc = Scenario::new(
            NetProfile::baseline(100.0),
            PageSpec::single(20 * 1024 * 1024),
        )
        .with_rounds(1);
        let rec = run_page_load(&ProtoConfig::Quic(cfg), &sc, 0);
        let plt = rec.plt.expect("finished").as_secs_f64();
        // 20MB at 100Mbps is 1.68s of serialization; allow generous startup.
        assert!(plt < 6.0, "{cc:?}: plt = {plt:.2}s");
    }
}
