//! Golden structured-trace snapshots.
//!
//! Pins the exact JSON-SEQ trace (`longlook_sim::trace::encode_seq`) of
//! two small trauma cells — a clean QUIC transfer and a TCP transfer cut
//! by a blackout — byte for byte. Any silent drift in the trace layer (a
//! reordered emit, a changed key, a different analytic packet size, a
//! missing dedup) or in the transports themselves fails *this named
//! test* instead of surfacing as a confusing analyzer diff downstream.
//!
//! The golden constants store one JSON text per line; the checker
//! re-frames them as RFC 7464 JSON-SEQ (RS `\u{1e}` + JSON + LF) before
//! comparing, so the on-disk framing is pinned too while the constants
//! stay printable. If a change is *intentional*, re-bless with
//! `LONGLOOK_BLESS=1 cargo test -p longlook-integration --test
//! golden_trace -- --nocapture` and paste the printed block over the
//! constant it names.
//!
//! Everything runs inside ONE `#[test]`: capture pins `LONGLOOK_TRACE`
//! (via `run_trauma_cell_traced`) and this test additionally pins
//! `LONGLOOK_BATCH` / `LONGLOOK_WIRE` to their defaults — all
//! process-global env vars.

use longlook_core::prelude::*;
use longlook_sim::trace::{encode_seq, parse_seq};

/// Run `f` with `key` set to `val`, restoring the prior value afterwards.
fn with_env<T>(key: &str, val: &str, f: impl FnOnce() -> T) -> T {
    let saved = std::env::var(key).ok();
    std::env::set_var(key, val);
    let out = f();
    match saved {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
    out
}

fn quic_clean_scenario() -> Scenario {
    Scenario::new(NetProfile::baseline(10.0), PageSpec::single(2 * 1024))
        .with_rounds(1)
        .with_seed(9601)
}

fn tcp_blackout_scenario() -> Scenario {
    let plan = FaultPlan::new().with_event(FaultEvent {
        at: Time::ZERO + Dur::from_millis(30),
        dur: Dur::from_millis(40),
        dir: FaultDir::Both,
        kind: FaultKind::Blackout,
    });
    Scenario::new(
        NetProfile::baseline(5.0).with_fault(plan),
        PageSpec::single(8 * 1024),
    )
    .with_rounds(1)
    .with_seed(9602)
}

/// Capture the server-side trace of round 0 as JSON-SEQ bytes.
fn capture(proto: &ProtoConfig, sc: &Scenario) -> String {
    let (_, records) = run_trauma_cell_traced(proto, sc, 0);
    encode_seq(&records)
}

/// Re-frame a printable golden (one JSON text per line) as JSON-SEQ.
fn frame(golden: &str) -> String {
    golden
        .trim()
        .lines()
        .map(|l| format!("\u{1e}{}\n", l.trim()))
        .collect()
}

fn check(name: &str, proto: &ProtoConfig, sc: &Scenario, golden: &str) {
    let encoded = capture(proto, sc);
    // Same-seed replay must be byte-identical before anything else: a
    // golden is meaningless if capture itself is unstable.
    let replay = capture(proto, sc);
    assert_eq!(
        encoded, replay,
        "{name}: same-seed trace capture is not byte-stable"
    );
    // The pinned bytes must round-trip through the parser losslessly.
    let parsed = parse_seq(&encoded)
        .unwrap_or_else(|e| panic!("{name}: captured trace does not parse as JSON-SEQ: {e}"));
    assert_eq!(
        encode_seq(&parsed),
        encoded,
        "{name}: parse/encode round-trip changed the bytes"
    );
    if std::env::var("LONGLOOK_BLESS").is_ok() {
        eprintln!("=== {name} ===\n{}", encoded.replace('\u{1e}', ""));
        return;
    }
    assert_eq!(
        encoded,
        frame(golden),
        "\n{name}: trace drifted from the golden snapshot.\n\
         If this change is intentional, bless a new snapshot:\n\
         LONGLOOK_BLESS=1 cargo test -p longlook-integration --test golden_trace -- --nocapture\n\
         --- actual (RS stripped) ---\n{}",
        encoded.replace('\u{1e}', "")
    );
}

const GOLDEN_TRACE_QUIC_CLEAN: &str = r#"
{"t":18433857,"k":"st","s":"Init"}
{"t":18433857,"k":"rx","pn":1,"sz":1207}
{"t":18433857,"k":"st","s":"SlowStart"}
{"t":18433857,"k":"st","s":"ApplicationLimited"}
{"t":18433857,"k":"tx","pn":1,"sz":389,"el":1}
{"t":18433857,"k":"ta","at":218433857}
{"t":22433857,"k":"st","s":"SlowStart"}
{"t":22433857,"k":"tx","pn":2,"sz":1409,"el":1}
{"t":22433857,"k":"ta","at":222433857}
{"t":22433857,"k":"tx","pn":3,"sz":893,"el":1}
{"t":22433857,"k":"ta","at":222433857}
{"t":22433857,"k":"st","s":"ApplicationLimited"}
"#;

const GOLDEN_TRACE_TCP_BLACKOUT: &str = r#"
{"t":17747414,"k":"st","s":"Init"}
{"t":17747414,"k":"rx","pn":0,"sz":54}
{"t":17747414,"k":"tx","pn":0,"sz":54}
{"t":30000000,"k":"f+","f":"blackout","d":"both"}
{"t":70000000,"k":"f-","f":"blackout","d":"both"}
{"t":253242742,"k":"rx","pn":0,"sz":404}
{"t":253242742,"k":"ack","nb":0}
{"t":253242742,"k":"cw","b":14000}
{"t":253242742,"k":"ta","at":453242742}
{"t":253242742,"k":"tx","pn":0,"sz":1454,"el":1}
{"t":253242742,"k":"ta","at":453242742}
{"t":253242742,"k":"tx","pn":1400,"sz":1454,"el":1}
{"t":253242742,"k":"ta","at":453242742}
{"t":253242742,"k":"tx","pn":2800,"sz":454,"el":1}
{"t":288739070,"k":"rx","pn":0,"sz":54}
{"t":288739070,"k":"ack","nb":2800}
{"t":288739070,"k":"ta","at":488739070}
{"t":288739070,"k":"cw","b":15400}
{"t":288740070,"k":"rx","pn":350,"sz":408}
{"t":288740070,"k":"ack","nb":400}
{"t":288740070,"k":"cw","b":15800}
{"t":288740070,"k":"st","s":"SlowStart"}
{"t":288740070,"k":"ta","at":488740070}
{"t":288740070,"k":"tx","pn":3200,"sz":118,"el":1}
{"t":288740070,"k":"st","s":"ApplicationLimited"}
{"t":288990070,"k":"ta","at":488990070}
{"t":288990070,"k":"tx","pn":3264,"sz":1471,"el":1}
{"t":288990070,"k":"st","s":"SlowStart"}
{"t":288990070,"k":"ta","at":488990070}
{"t":288990070,"k":"tx","pn":4664,"sz":1454,"el":1}
{"t":288990070,"k":"ta","at":488990070}
{"t":288990070,"k":"tx","pn":6064,"sz":1454,"el":1}
{"t":288990070,"k":"ta","at":488990070}
{"t":288990070,"k":"tx","pn":7464,"sz":1454,"el":1}
{"t":288990070,"k":"ta","at":488990070}
{"t":288990070,"k":"tx","pn":8864,"sz":1454,"el":1}
{"t":288990070,"k":"ta","at":488990070}
{"t":288990070,"k":"tx","pn":10264,"sz":1355,"el":1}
{"t":288990070,"k":"st","s":"ApplicationLimited"}
"#;

#[test]
fn traces_match_golden_snapshots() {
    with_env("LONGLOOK_BATCH", "on", || {
        with_env("LONGLOOK_WIRE", "structured", || {
            check(
                "GOLDEN_TRACE_QUIC_CLEAN",
                &ProtoConfig::Quic(QuicConfig::default()),
                &quic_clean_scenario(),
                GOLDEN_TRACE_QUIC_CLEAN,
            );
            check(
                "GOLDEN_TRACE_TCP_BLACKOUT",
                &ProtoConfig::Tcp(TcpConfig::default()),
                &tcp_blackout_scenario(),
                GOLDEN_TRACE_TCP_BLACKOUT,
            );
        })
    });
}
