//! End-to-end integration: the full stack (workload -> transport -> link
//! emulation -> statistics) reproducing the paper's headline findings at
//! small scale.

use longlook_core::prelude::*;

fn quic() -> ProtoConfig {
    ProtoConfig::Quic(QuicConfig::default())
}

fn tcp() -> ProtoConfig {
    ProtoConfig::Tcp(TcpConfig::default())
}

#[test]
fn quic_wins_small_objects_via_zero_rtt() {
    let sc = Scenario::new(NetProfile::baseline(10.0), PageSpec::single(10 * 1024)).with_rounds(6);
    let pair = compare_pair(&quic(), &tcp(), &sc);
    assert_eq!(pair.comparison.verdict, Verdict::CandidateWins);
    assert!(
        pair.comparison.percent > 40.0,
        "0-RTT vs 2-RTT handshake dominates small pages: {:+.0}%",
        pair.comparison.percent
    );
}

#[test]
fn quic_wins_under_loss() {
    let sc = Scenario::new(
        NetProfile::baseline(50.0).with_loss(0.01),
        PageSpec::single(5 * 1024 * 1024),
    )
    .with_rounds(6);
    let pair = compare_pair(&quic(), &tcp(), &sc);
    assert_eq!(
        pair.comparison.verdict,
        Verdict::CandidateWins,
        "QUIC recovers from loss faster: {:+.0}%",
        pair.comparison.percent
    );
}

#[test]
fn quic_loses_under_deep_reordering() {
    // The paper's jitter scenario: netem-style jitter reorders packets and
    // QUIC's fixed NACK threshold misreads them as losses.
    let net = NetProfile::baseline(50.0)
        .with_extra_rtt(Dur::from_millis(76))
        .with_jitter(Dur::from_millis(10));
    let sc = Scenario::new(net, PageSpec::single(10 * 1024 * 1024)).with_rounds(6);
    let pair = compare_pair(&quic(), &tcp(), &sc);
    assert!(
        pair.comparison.percent < 0.0,
        "QUIC should lose under reordering: {:+.0}%",
        pair.comparison.percent
    );
}

#[test]
fn raising_nack_threshold_rescues_quic_from_reordering() {
    let net = NetProfile::baseline(50.0)
        .with_extra_rtt(Dur::from_millis(76))
        .with_jitter(Dur::from_millis(10));
    let sc = Scenario::new(net, PageSpec::single(10 * 1024 * 1024)).with_rounds(4);
    let strict = Summary::of(&plt_samples(&quic(), &sc));
    let cfg = QuicConfig {
        nack_threshold: 50,
        ..QuicConfig::default()
    };
    let tolerant = Summary::of(&plt_samples(&ProtoConfig::Quic(cfg), &sc));
    assert!(
        tolerant.mean() < strict.mean() * 0.8,
        "threshold 50 must beat threshold 3: {:.0} vs {:.0} ms",
        tolerant.mean(),
        strict.mean()
    );
}

#[test]
fn quic_loses_for_many_small_objects_at_high_bandwidth() {
    let sc = Scenario::new(
        NetProfile::baseline(100.0),
        PageSpec::uniform(200, 10 * 1024),
    )
    .with_rounds(5);
    let pair = compare_pair(&quic(), &tcp(), &sc);
    assert!(
        pair.comparison.percent < 0.0,
        "200 small objects serialize behind the toy QUIC server: {:+.0}%",
        pair.comparison.percent
    );
}

#[test]
fn mobile_diminishes_quic_gains() {
    let page = PageSpec::single(5 * 1024 * 1024);
    let desktop = compare_pair(
        &quic(),
        &tcp(),
        &Scenario::new(NetProfile::baseline(50.0), page.clone()).with_rounds(4),
    );
    let motog = compare_pair(
        &quic(),
        &tcp(),
        &Scenario::new(NetProfile::baseline(50.0), page)
            .with_rounds(4)
            .on_device(DeviceProfile::MOTOG),
    );
    assert!(
        motog.comparison.percent < desktop.comparison.percent - 10.0,
        "MotoG gain ({:+.0}%) must be well below desktop ({:+.0}%)",
        motog.comparison.percent,
        desktop.comparison.percent
    );
}

#[test]
fn welch_gate_reports_inconclusive_for_noisy_ties() {
    // Two identical protocols differ only by noise: the verdict must be
    // Inconclusive, never a win.
    let sc = Scenario::new(
        NetProfile::baseline(10.0).with_loss(0.01),
        PageSpec::single(500 * 1024),
    )
    .with_rounds(8);
    let a = plt_samples(&quic(), &sc);
    let b = plt_samples(&quic(), &sc.clone().with_seed(999));
    let cmp = Comparison::lower_is_better(&a, &b);
    assert_eq!(cmp.verdict, Verdict::Inconclusive, "{:?}", cmp.percent);
}

#[test]
fn deadline_miss_is_reported_not_hung() {
    // An absurdly short deadline: the run must end and report None.
    let mut sc = Scenario::new(
        NetProfile::baseline(5.0),
        PageSpec::single(10 * 1024 * 1024),
    )
    .with_rounds(1);
    sc.deadline = Dur::from_millis(100);
    let rec = run_page_load(&quic(), &sc, 0);
    assert!(rec.plt.is_none());
    assert!(rec.ended_at <= Time::ZERO + Dur::from_millis(150));
}
