//! Handshake-phase trauma: the connection-establishment edge cases the
//! fuzzer's random plans hit only occasionally, pinned as named tests.
//!
//! Two families:
//!
//! 1. **0-RTT rejection fallback** — a server whose cached config expired
//!    (`zero_rtt_accept = false`) REJs the early data; the client must
//!    fall back to a full 1-RTT handshake, retransmit the early request,
//!    and still complete the load (at a strictly-no-better PLT than an
//!    accepting server).
//! 2. **Blackout spanning the first flight** — an outage that swallows
//!    the initial handshake packets. A short outage must be survived by
//!    retransmission timers (completion after retry); an outage outlasting
//!    the watchdog must surface a *typed* error. Either way the world
//!    quiesces: `RunOutcome::DeadlineReached` is the silent hang the
//!    fault layer exists to make impossible.

use longlook_core::prelude::*;

fn cell_scenario(plan: Option<FaultPlan>) -> Scenario {
    let net = match plan {
        Some(p) => NetProfile::baseline(5.0).with_fault(p),
        None => NetProfile::baseline(5.0),
    };
    let mut sc = Scenario::new(net, PageSpec::single(40 * 1024))
        .with_rounds(1)
        .with_seed(8101);
    sc.deadline = Dur::from_secs(120);
    sc
}

fn blackout_from_start(secs: u64) -> FaultPlan {
    FaultPlan::new().with_event(FaultEvent {
        at: Time::ZERO,
        dur: Dur::from_secs(secs),
        dir: FaultDir::Both,
        kind: FaultKind::Blackout,
    })
}

/// A rejecting server forces the warm client through REJ -> full CHLO ->
/// retransmitted request, and the load still completes with no error on
/// either endpoint.
#[test]
fn quic_zero_rtt_rejection_falls_back_and_completes() {
    let sc = cell_scenario(None);
    let accepting = ProtoConfig::Quic(QuicConfig::default());
    let rejecting = ProtoConfig::Quic(QuicConfig {
        zero_rtt_accept: false,
        ..QuicConfig::default()
    });

    let ok = run_trauma_cell(&accepting, &sc, 0);
    let rej = run_trauma_cell(&rejecting, &sc, 0);

    assert!(ok.completed, "accepting baseline must complete");
    assert!(rej.completed, "rejected 0-RTT must fall back and complete");
    assert_eq!(rej.client_error, None);
    assert_eq!(rej.server_error, None);
    assert_eq!(
        rej.app_bytes, ok.app_bytes,
        "fallback must deliver the page"
    );

    let plt_ok = ok.record.plt.expect("accepting PLT");
    let plt_rej = rej.record.plt.expect("rejecting PLT");
    assert!(
        plt_rej > plt_ok,
        "a REJ costs at least one extra round trip: {plt_rej:?} vs {plt_ok:?}"
    );
}

/// A short blackout swallowing the entire first flight is survived by
/// both protocols: retransmission timers (SYN retry for TCP, RTO-driven
/// CHLO/data retry for QUIC) carry the handshake across the outage and
/// the load completes without any watchdog error.
#[test]
fn short_blackout_over_first_flight_is_survived_by_retry() {
    let sc = cell_scenario(Some(blackout_from_start(3)));
    for proto in [
        ProtoConfig::Quic(QuicConfig::default()),
        ProtoConfig::Tcp(TcpConfig::default()),
    ] {
        let rec = run_trauma_cell(&proto, &sc, 0);
        assert!(
            rec.completed,
            "{}: a 3s outage must be retried through, got client={:?} server={:?}",
            proto.name(),
            rec.client_error,
            rec.server_error
        );
        assert_eq!(rec.client_error, None, "{}", proto.name());
        assert!(rec.app_bytes > 0, "{}", proto.name());
        assert_ne!(
            rec.outcome,
            RunOutcome::DeadlineReached,
            "{}: the world must quiesce after completing",
            proto.name()
        );
    }
}

/// An outage outlasting every watchdog budget: nothing can complete, so
/// each client must give up with the typed error matching its handshake
/// state — and never silently spin to the deadline.
#[test]
fn blackout_outlasting_watchdog_surfaces_typed_handshake_errors() {
    let sc = cell_scenario(Some(blackout_from_start(600)));

    // A *cold* QUIC client is mid-handshake when the link dies, so its
    // watchdog fires the handshake deadline; a warm 0-RTT client is
    // locally established from t=0 and reads the dead path as idleness.
    let mut cold = sc.clone();
    cold.zero_rtt = false;
    let cases = [
        (
            ProtoConfig::Quic(QuicConfig::default()),
            &cold,
            ConnError::HandshakeTimeout,
        ),
        (
            ProtoConfig::Quic(QuicConfig::default()),
            &sc,
            ConnError::IdleTimeout,
        ),
        (
            ProtoConfig::Tcp(TcpConfig::default()),
            &sc,
            ConnError::HandshakeTimeout,
        ),
    ];
    for (proto, sc, expect) in cases {
        let rec = run_trauma_cell(&proto, sc, 0);
        assert!(!rec.completed, "{}: nothing can complete", proto.name());
        assert_eq!(
            rec.client_error,
            Some(expect),
            "{} (zero_rtt={})",
            proto.name(),
            sc.zero_rtt
        );
        assert!(rec.accounted_for());
        assert_ne!(
            rec.outcome,
            RunOutcome::DeadlineReached,
            "{}: give-up must quiesce the world, not hang it",
            proto.name()
        );
    }
}

/// The composition of both families: the server rejects 0-RTT *and* a
/// short blackout eats the fallback flight. The retry machinery must
/// still land the full handshake and the page.
#[test]
fn rejection_plus_short_blackout_still_completes() {
    let sc = cell_scenario(Some(blackout_from_start(2)));
    let proto = ProtoConfig::Quic(QuicConfig {
        zero_rtt_accept: false,
        ..QuicConfig::default()
    });
    let rec = run_trauma_cell(&proto, &sc, 0);
    assert!(
        rec.completed,
        "REJ + 2s blackout must still complete, got client={:?} server={:?}",
        rec.client_error, rec.server_error
    );
    assert_eq!(rec.client_error, None);
    assert_ne!(rec.outcome, RunOutcome::DeadlineReached);
}
