//! Determinism-equivalence suite for the parallel experiment runner.
//!
//! The claim under test: sharding `(scenario, protocol, round)` cells
//! across worker threads changes **nothing** about the results — every
//! `RunRecord` field, every congestion-control `StateTrace` visit, and
//! every Welch-gated heatmap cell is bit-identical to a serial run. This
//! holds because each cell is a pure function of its derived seed (it
//! builds its own `World`), and the runner reassembles results in
//! deterministic cell order before any aggregation.
//!
//! The wall-clock sanity check (threads actually help) only runs in
//! release builds: debug-mode timing is noise-dominated and the tier-1
//! `cargo test -q` pass should stay deterministic.

use longlook_core::prelude::*;
use longlook_core::testbed::{FlowSpec, Testbed};

/// Four deliberately different scenarios: a clean low-rate link, a lossy
/// mid-rate link with a larger page, a jittery high-RTT link (jitter
/// exercises the per-packet RNG draws most heavily), and a faulted link
/// (flap + bandwidth cliff) that drives the deterministic fault layer and
/// the armed watchdog through the same shard-invariance contract.
fn scenarios() -> Vec<(&'static str, Scenario)> {
    let fault = FaultPlan::new()
        .with_event(FaultEvent {
            at: Time::ZERO + Dur::from_millis(300),
            dur: Dur::from_millis(900),
            dir: FaultDir::Both,
            kind: FaultKind::Flap {
                period: Dur::from_millis(150),
                down_pm: 400,
            },
        })
        .with_event(FaultEvent {
            at: Time::ZERO + Dur::from_millis(1500),
            dur: Dur::from_millis(800),
            dir: FaultDir::Down,
            kind: FaultKind::BandwidthCliff { factor_pm: 200 },
        });
    vec![
        (
            "clean 10Mbps / 50KB",
            Scenario::new(NetProfile::baseline(10.0), PageSpec::single(50 * 1024))
                .with_rounds(4)
                .with_seed(7001),
        ),
        (
            "1% loss 20Mbps / 200KB",
            Scenario::new(
                NetProfile::baseline(20.0).with_loss(0.01),
                PageSpec::single(200 * 1024),
            )
            .with_rounds(4)
            .with_seed(7002),
        ),
        (
            "jitter 5Mbps +100ms / 10x10KB",
            Scenario::new(
                NetProfile::baseline(5.0)
                    .with_extra_rtt(Dur::from_millis(100))
                    .with_jitter(Dur::from_millis(5)),
                PageSpec::uniform(10, 10 * 1024),
            )
            .with_rounds(4)
            .with_seed(7003),
        ),
        (
            "flap+cliff fault 10Mbps / 80KB",
            Scenario::new(
                NetProfile::baseline(10.0).with_fault(fault),
                PageSpec::single(80 * 1024),
            )
            .with_rounds(4)
            .with_seed(7004),
        ),
    ]
}

fn quic() -> ProtoConfig {
    ProtoConfig::Quic(QuicConfig::default())
}

fn tcp() -> ProtoConfig {
    ProtoConfig::Tcp(TcpConfig::default())
}

/// Serial and 4-thread runs produce field-for-field identical
/// `RunRecord` vectors for both protocols in every scenario.
#[test]
fn run_records_serial_equals_threads4() {
    for (name, sc) in scenarios() {
        for proto in [quic(), tcp()] {
            let serial = run_records_par(&proto, &sc, Parallelism::Serial);
            let par = run_records_par(&proto, &sc, Parallelism::Threads(4));
            assert_eq!(serial, par, "RunRecords diverged for {name} / {proto:?}");
        }
    }
}

/// The congestion-control state traces — the most fine-grained artifact a
/// run produces (every state visit with its timestamp) — are identical
/// between serial and threaded execution.
#[test]
fn state_traces_serial_equals_threads4() {
    for (name, sc) in scenarios() {
        let serial = run_records_par(&quic(), &sc, Parallelism::Serial);
        let par = run_records_par(&quic(), &sc, Parallelism::Threads(4));
        for (k, (s, p)) in serial.iter().zip(&par).enumerate() {
            let st = s.server_trace.as_ref().expect("serial trace");
            let pt = p.server_trace.as_ref().expect("parallel trace");
            assert_eq!(st.visits, pt.visits, "{name} round {k}: visit sequence");
            assert_eq!(
                st.time_in, pt.time_in,
                "{name} round {k}: state dwell times"
            );
            assert_eq!(st.span, pt.span, "{name} round {k}: trace span");
        }
    }
}

/// A paired QUIC-vs-TCP comparison (the paper's back-to-back design)
/// yields the same samples, percent difference, and significance verdict
/// regardless of the worker count — including pooling both protocols'
/// rounds into one shard pool.
#[test]
fn compare_pair_serial_equals_threads4() {
    for (name, sc) in scenarios() {
        let serial = compare_pair_par(&quic(), &tcp(), &sc, Parallelism::Serial);
        let par = compare_pair_par(&quic(), &tcp(), &sc, Parallelism::Threads(4));
        assert_eq!(serial.quic_ms, par.quic_ms, "{name}: QUIC samples");
        assert_eq!(serial.tcp_ms, par.tcp_ms, "{name}: TCP samples");
        assert_eq!(
            serial.comparison.percent, par.comparison.percent,
            "{name}: percent difference"
        );
        assert_eq!(
            serial.comparison.verdict, par.comparison.verdict,
            "{name}: Welch verdict"
        );
    }
}

/// A full heatmap sweep produces identical cells (percent, p-value, and
/// verdict) under serial and 4-thread execution.
#[test]
fn heatmap_cells_serial_equals_threads4() {
    let rows = vec!["5Mbps".to_string(), "20Mbps".to_string()];
    let cols = vec!["10KB".to_string(), "100KB".to_string()];
    let rates = [5.0, 20.0];
    let sizes = [10 * 1024, 100 * 1024];
    let make = |r: usize, c: usize| {
        Scenario::new(NetProfile::baseline(rates[r]), PageSpec::single(sizes[c]))
            .with_rounds(3)
            .with_seed(7100 + (r * 2 + c) as u64)
    };
    let serial = sweep_heatmap_par(
        "det",
        &rows,
        &cols,
        &quic(),
        &tcp(),
        make,
        Parallelism::Serial,
    );
    let par = sweep_heatmap_par(
        "det",
        &rows,
        &cols,
        &quic(),
        &tcp(),
        make,
        Parallelism::Threads(4),
    );
    assert_eq!(serial.cells, par.cells, "heatmap cells diverged");
    assert_eq!(serial.verdict_counts(), par.verdict_counts());
}

/// Seed stability: constructing and running the very same scenario twice
/// gives identical `RunRecord`s **and** an identical number of simulator
/// events processed — i.e. not just matching summaries but the same
/// event-by-event execution.
#[test]
fn same_seed_same_world() {
    let sc = Scenario::new(
        NetProfile::baseline(10.0).with_loss(0.005),
        PageSpec::single(80 * 1024),
    )
    .with_rounds(3)
    .with_seed(7200);

    for proto in [quic(), tcp()] {
        let a = run_records(&proto, &sc);
        let b = run_records(&proto, &sc);
        assert_eq!(a, b, "repeat run diverged for {proto:?}");
    }

    // Event-count check needs direct World access, so drive a Testbed by
    // hand twice with the same seed.
    let run_once = || {
        let mut tb = Testbed::direct(
            7201,
            &sc.net,
            DeviceProfile::DESKTOP,
            sc.page.clone(),
            vec![FlowSpec {
                proto: quic(),
                zero_rtt: true,
                app: Box::new(WebClient::new(sc.page.clone())),
            }],
            None,
            true,
        );
        tb.run(sc.deadline);
        let plt = tb.client_host().app::<WebClient>(0).plt();
        (plt, tb.world.events_processed())
    };
    let (plt_a, events_a) = run_once();
    let (plt_b, events_b) = run_once();
    assert_eq!(plt_a, plt_b, "PLT changed between identical runs");
    assert_eq!(
        events_a, events_b,
        "event count changed between identical runs"
    );
    assert!(events_a > 0, "world processed no events");
}

/// `LONGLOOK_JOBS`-driven `Parallelism::auto` resolution is exercised in
/// the runner's own unit tests; here we only confirm the explicit knob on
/// every public `*_par` entry point agrees with the serial path for PLT
/// sampling (the most common call).
#[test]
fn plt_samples_serial_equals_threads4() {
    for (name, sc) in scenarios() {
        let serial = plt_samples_par(&quic(), &sc, Parallelism::Serial);
        let par = plt_samples_par(&quic(), &sc, Parallelism::Threads(4));
        assert_eq!(serial, par, "{name}: PLT samples diverged");
    }
}

/// Chunked claiming changes nothing: `Serial`, `Threads(4)`, and
/// `Threads(4)` with `LONGLOOK_CHUNK=7` produce field-for-field identical
/// `RunRecord`s for both protocols in every scenario. Chunk size only
/// regroups which worker claims which cells — reassembly is by cell
/// index, so the env knob must be invisible in the results.
#[test]
fn chunked_mode_serial_equals_threads4() {
    for (name, sc) in scenarios() {
        for proto in [quic(), tcp()] {
            let serial = run_records_par(&proto, &sc, Parallelism::Serial);
            let par = run_records_par(&proto, &sc, Parallelism::Threads(4));
            assert_eq!(serial, par, "{name} / {proto:?}: Threads(4) diverged");
            // The env knob. Leaking chunk=7 to a concurrently running
            // test is harmless by the very property under test (results
            // are chunk-invariant), so no serialization lock is needed.
            std::env::set_var("LONGLOOK_CHUNK", "7");
            let chunked = run_records_par(&proto, &sc, Parallelism::Threads(4));
            std::env::remove_var("LONGLOOK_CHUNK");
            assert_eq!(
                serial, chunked,
                "{name} / {proto:?}: LONGLOOK_CHUNK=7 diverged"
            );
        }
    }
}

/// The explicit chunk-size override sweeps a range of sizes (including
/// chunks larger than the batch) without perturbing a single record, and
/// the scheduler report accounts for every cell exactly once.
#[test]
fn explicit_chunk_sizes_are_record_invariant() {
    let (name, sc) = scenarios().remove(1); // the lossy scenario
    let proto = quic();
    let n = sc.rounds as usize;
    let (serial, _) = run_ordered_chunked(Parallelism::Serial, None, n, |k| {
        run_page_load(&proto, &sc, k as u64)
    });
    for chunk in [1, 2, 3, 7, 64] {
        let (par, report) = run_ordered_chunked(Parallelism::Threads(4), Some(chunk), n, |k| {
            run_page_load(&proto, &sc, k as u64)
        });
        assert_eq!(serial, par, "{name}: chunk {chunk} diverged");
        assert_eq!(report.chunk, chunk);
        assert_eq!(
            report.workers.iter().map(|w| w.cells).sum::<usize>(),
            n,
            "{name}: chunk {chunk} report lost cells"
        );
    }
}

/// Wall-clock sanity (release builds only): 4 workers complete a 5x5
/// `sweep_heatmap` faster than a serial run. Skipped on machines with
/// fewer than 2 hardware threads.
#[cfg(not(debug_assertions))]
#[test]
fn threads4_beats_serial_on_5x5_sweep() {
    use std::time::Instant;

    if std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) < 2 {
        eprintln!("skipping wall-clock check: single hardware thread");
        return;
    }

    let rows: Vec<String> = ["5Mbps", "10Mbps", "20Mbps", "50Mbps", "100Mbps"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let cols: Vec<String> = ["10KB", "50KB", "100KB", "200KB", "500KB"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let rates = [5.0, 10.0, 20.0, 50.0, 100.0];
    let sizes = [10 * 1024, 50 * 1024, 100 * 1024, 200 * 1024, 500 * 1024];
    let make = |r: usize, c: usize| {
        Scenario::new(NetProfile::baseline(rates[r]), PageSpec::single(sizes[c]))
            .with_rounds(2)
            .with_seed(7300 + (r * 5 + c) as u64)
    };

    let t0 = Instant::now();
    let serial = sweep_heatmap_par(
        "wc",
        &rows,
        &cols,
        &quic(),
        &tcp(),
        make,
        Parallelism::Serial,
    );
    let serial_elapsed = t0.elapsed();

    let t1 = Instant::now();
    let par = sweep_heatmap_par(
        "wc",
        &rows,
        &cols,
        &quic(),
        &tcp(),
        make,
        Parallelism::Threads(4),
    );
    let par_elapsed = t1.elapsed();

    assert_eq!(
        serial.cells, par.cells,
        "wall-clock sweep must stay identical"
    );
    assert!(
        par_elapsed < serial_elapsed,
        "Threads(4) ({par_elapsed:?}) not faster than serial ({serial_elapsed:?})"
    );
    eprintln!(
        "5x5 sweep: serial {serial_elapsed:?}, Threads(4) {par_elapsed:?} ({:.2}x)",
        serial_elapsed.as_secs_f64() / par_elapsed.as_secs_f64()
    );
}
